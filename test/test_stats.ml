(* Histogram / timeseries tests including qcheck properties. *)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 100 do
    Stats.Histogram.record h (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "p50" 50.0 (Stats.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.001)) "p95" 95.0 (Stats.Histogram.percentile h 95.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Stats.Histogram.percentile h 99.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (Stats.Histogram.percentile h 100.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Stats.Histogram.mean h);
  Alcotest.(check (float 0.001)) "min" 1.0 (Stats.Histogram.min_value h);
  Alcotest.(check (float 0.001)) "max" 100.0 (Stats.Histogram.max_value h)

let test_histogram_record_after_sort () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h 5.0;
  ignore (Stats.Histogram.percentile h 50.0);
  Stats.Histogram.record h 1.0;
  Alcotest.(check (float 0.001)) "min after resort" 1.0 (Stats.Histogram.min_value h)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.record a 1.0;
  Stats.Histogram.record b 3.0;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Stats.Histogram.count m);
  Alcotest.(check (float 0.001)) "merged mean" 2.0 (Stats.Histogram.mean m)

let test_histogram_buckets_cover_all () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.record h (float_of_int (i * i))
  done;
  let rows = Stats.Histogram.buckets h ~n:20 in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 rows in
  Alcotest.(check int) "bucket counts sum to n" 1000 total

let test_histogram_stddev () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  (* classic example: population stddev 2; sample stddev ~2.138 *)
  let sd = Stats.Histogram.stddev h in
  if abs_float (sd -. 2.138) > 0.01 then Alcotest.failf "stddev: %f" sd

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e6)) (float_bound_inclusive 100.0))
    (fun (values, p) ->
      QCheck.assume (values <> []);
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (abs_float v)) values;
      let x = Stats.Histogram.percentile h p in
      x >= Stats.Histogram.min_value h && x <= Stats.Histogram.max_value h)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e6))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (abs_float v)) values;
      let ps = [ 1.0; 25.0; 50.0; 75.0; 99.0 ] in
      let xs = List.map (Stats.Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono xs)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e6))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (abs_float v)) values;
      let m = Stats.Histogram.mean h in
      m >= Stats.Histogram.min_value h -. 1e-9 && m <= Stats.Histogram.max_value h +. 1e-9)

let test_timeseries_buckets () =
  let ts = Stats.Timeseries.create ~bucket_width:100.0 in
  Stats.Timeseries.record ts 10.0;
  Stats.Timeseries.record ts 50.0;
  Stats.Timeseries.record ts 150.0;
  Stats.Timeseries.record ts 450.0;
  let rows = Stats.Timeseries.series ts in
  Alcotest.(check int) "row count with gaps filled" 5 (List.length rows);
  Alcotest.(check (list int)) "counts" [ 2; 1; 0; 0; 1 ] (List.map snd rows);
  Alcotest.(check int) "total" 4 (Stats.Timeseries.total ts)

let test_timeseries_mean_rate () =
  let ts = Stats.Timeseries.create ~bucket_width:10.0 in
  List.iter (Stats.Timeseries.record ts) [ 1.0; 2.0; 11.0; 12.0; 21.0; 22.0 ];
  Alcotest.(check (float 0.001)) "mean rate" 2.0 (Stats.Timeseries.mean_rate_per_bucket ts)

(* Regression: downsampling used floor division, so a low-rate series
   (below one event per bucket on average) rendered as an entirely
   blank bar even though activity happened in every group. *)
let test_timeseries_render_low_rate_visible () =
  let a = Stats.Timeseries.create ~bucket_width:1.0 in
  (* one event every third bucket across ~200 buckets: every
     downsampled group is nonzero but averages below 1 *)
  for i = 0 to 66 do
    Stats.Timeseries.record a ((3.0 *. float_of_int i) +. 0.5)
  done;
  let b = Stats.Timeseries.create ~bucket_width:1.0 in
  for _ = 1 to 100 do
    Stats.Timeseries.record b 0.5
  done;
  Stats.Timeseries.record b 199.5;
  let out = Stats.Timeseries.render_pair ~label_a:"sparse" a ~label_b:"spiky" b ~width:10 in
  match String.split_on_char '|' out with
  | _ :: bar :: _ ->
    Alcotest.(check bool) "low-rate activity never renders blank" false
      (String.contains bar ' ')
  | _ -> Alcotest.fail "unexpected render_pair format"

(* ----- bootstrap summaries ----- *)

let test_summary_point_estimates () =
  let values = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.001)) "mean" 50.5 (Stats.Summary.mean values);
  Alcotest.(check (float 0.001)) "p95" 95.0 (Stats.Summary.percentile values 95.0)

let test_summary_ci_brackets_point () =
  let rng = Sim.Rng.of_int 5 in
  let values = Array.init 50 (fun i -> float_of_int ((i * 13 mod 50) + 1)) in
  let ci = Stats.Summary.mean_ci ~rng values in
  Alcotest.(check bool) "lo <= point <= hi" true
    (ci.Stats.Summary.lo <= ci.Stats.Summary.point
    && ci.Stats.Summary.point <= ci.Stats.Summary.hi);
  Alcotest.(check bool) "interval nondegenerate" true
    (ci.Stats.Summary.hi > ci.Stats.Summary.lo)

let test_summary_ci_narrows_with_n () =
  let rng = Sim.Rng.of_int 6 in
  let sample n = Array.init n (fun i -> float_of_int (i mod 10)) in
  let width n =
    let ci = Stats.Summary.mean_ci ~rng (sample n) in
    ci.Stats.Summary.hi -. ci.Stats.Summary.lo
  in
  Alcotest.(check bool) "larger n, tighter CI" true (width 400 < width 20)

let test_summary_single_sample () =
  let rng = Sim.Rng.of_int 7 in
  let ci = Stats.Summary.mean_ci ~rng [| 42.0 |] in
  Alcotest.(check (float 0.001)) "degenerate CI" 42.0 ci.Stats.Summary.lo;
  Alcotest.(check (float 0.001)) "degenerate CI hi" 42.0 ci.Stats.Summary.hi

let prop_summary_percentile_matches_histogram =
  QCheck.Test.make ~name:"summary percentile = histogram percentile" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e6))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Stats.Histogram.create () in
      List.iter (fun v -> Stats.Histogram.record h (abs_float v)) values;
      let arr = Stats.Summary.of_histogram h in
      List.for_all
        (fun p -> Stats.Summary.percentile arr p = Stats.Histogram.percentile h p)
        [ 1.0; 50.0; 95.0; 99.0 ])

let suites =
  [
    ( "stats.histogram",
      [
        Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "record after sort" `Quick test_histogram_record_after_sort;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "buckets cover all samples" `Quick test_histogram_buckets_cover_all;
        Alcotest.test_case "stddev" `Quick test_histogram_stddev;
        QCheck_alcotest.to_alcotest prop_percentile_bounds;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
        QCheck_alcotest.to_alcotest prop_mean_between_min_max;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "point estimates" `Quick test_summary_point_estimates;
        Alcotest.test_case "CI brackets the point" `Quick test_summary_ci_brackets_point;
        Alcotest.test_case "CI narrows with n" `Quick test_summary_ci_narrows_with_n;
        Alcotest.test_case "single sample degenerate" `Quick test_summary_single_sample;
        QCheck_alcotest.to_alcotest prop_summary_percentile_matches_histogram;
      ] );
    ( "stats.timeseries",
      [
        Alcotest.test_case "bucketing with gaps" `Quick test_timeseries_buckets;
        Alcotest.test_case "mean rate" `Quick test_timeseries_mean_rate;
        Alcotest.test_case "low-rate render stays visible" `Quick
          test_timeseries_render_low_rate_visible;
      ] );
  ]
