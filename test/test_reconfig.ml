(* Logless dynamic reconfiguration: the Reconfig.Planner's safe
   single-step decomposition, Healer.apply_target driving a cluster to
   an arbitrary target membership, the self-healing reconcile loop
   replacing a permanently dead node without operator input, and the
   leader-crash-mid-reconfig regression (the pending-change latch is
   derived from config commitment, so a successor must never stay
   wedged by its predecessor's in-flight change). *)

let s = Helpers.s

let member ?(voter = true) ?(kind = Raft.Types.Mysql_server) id region =
  { Raft.Types.id; region; voter; kind }

let cfg members = { Raft.Types.members }

let voter_ids c = List.sort compare (Raft.Types.voter_ids c)

let step_names steps = List.map Reconfig.Planner.describe_step steps

(* ----- planner ----- *)

let base_config () =
  cfg
    [
      member "my1" "r1";
      member "lt1a" "r1" ~voter:false ~kind:Raft.Types.Logtailer;
      member "my2" "r2";
    ]

let test_planner_noop () =
  let c = base_config () in
  (match Reconfig.Planner.plan ~current:c ~target:c with
  | Ok [] -> ()
  | Ok steps -> Alcotest.failf "noop planned %d steps" (List.length steps)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "is_noop" true (Reconfig.Planner.is_noop ~current:c ~target:c)

let test_planner_add_voter_is_two_steps () =
  let current = base_config () in
  let target = cfg (Raft.Types.config_members current @ [ member "my3" "r3" ]) in
  match Reconfig.Planner.plan ~current ~target with
  | Error e -> Alcotest.fail e
  | Ok steps ->
    Alcotest.(check (list string)) "learner-first decomposition"
      [ "add-learner my3@r3(mysql,non-voter)"; "promote my3" ]
      (step_names steps)

let test_planner_swap_voter () =
  (* replace my2 with a fresh node under a new id: the voter set must
     grow through the union (add+promote before demote+remove). *)
  let current = base_config () in
  let target =
    cfg
      (List.map
         (fun m -> if m.Raft.Types.id = "my2" then member "my2b" "r2" else m)
         (Raft.Types.config_members current))
  in
  match Reconfig.Planner.plan ~current ~target with
  | Error e -> Alcotest.fail e
  | Ok steps ->
    Alcotest.(check (list string)) "swap order"
      [
        "add-learner my2b@r2(mysql,non-voter)";
        "promote my2b";
        "demote my2";
        "remove my2";
      ]
      (step_names steps)

let test_planner_demote_and_remove_learner () =
  let current = base_config () in
  (* drop the learner, demote a voter in place *)
  let target =
    cfg
      (List.filter_map
         (fun m ->
           if m.Raft.Types.id = "lt1a" then None
           else if m.Raft.Types.id = "my2" then Some { m with Raft.Types.voter = false }
           else Some m)
         (Raft.Types.config_members current))
  in
  match Reconfig.Planner.plan ~current ~target with
  | Error e -> Alcotest.fail e
  | Ok steps ->
    Alcotest.(check (list string)) "demote + remove"
      [ "demote my2"; "remove lt1a" ]
      (step_names steps)

let test_planner_rejects_retained_id_region_change () =
  let current = base_config () in
  let target =
    cfg
      (List.map
         (fun m -> if m.Raft.Types.id = "my2" then member "my2" "r9" else m)
         (Raft.Types.config_members current))
  in
  match Reconfig.Planner.plan ~current ~target with
  | Ok _ -> Alcotest.fail "region change of a retained id must be rejected"
  | Error e ->
    Alcotest.(check bool) "suggests replacement" true (Helpers.contains e "new id")

let test_planner_rejects_invalid_targets () =
  let current = base_config () in
  (match
     Reconfig.Planner.plan ~current
       ~target:(cfg [ member "lt1a" "r1" ~voter:false ~kind:Raft.Types.Logtailer ])
   with
  | Ok _ -> Alcotest.fail "voterless target accepted"
  | Error _ -> ());
  match
    Reconfig.Planner.plan ~current ~target:(cfg [ member "my1" "r1"; member "my1" "r1" ])
  with
  | Ok _ -> Alcotest.fail "duplicate ids accepted"
  | Error _ -> ()

(* Every plan the planner emits must hold its own invariants: at most
   one voter-set change per step and overlapping voter sets between
   consecutive configs.  Re-verify externally by folding apply_step. *)
let test_planner_steps_are_single_voter_changes () =
  let current = base_config () in
  let target =
    cfg
      [
        member "my1" "r1";
        member "my2b" "r2";
        member "my3" "r3";
        member "lt3a" "r3" ~voter:false ~kind:Raft.Types.Logtailer;
      ]
  in
  match Reconfig.Planner.plan ~current ~target with
  | Error e -> Alcotest.fail e
  | Ok steps ->
    let final =
      List.fold_left
        (fun acc step ->
          match Reconfig.Planner.apply_step acc step with
          | Error e -> Alcotest.failf "apply %s: %s" (Reconfig.Planner.describe_step step) e
          | Ok next ->
            Alcotest.(check bool)
              (Reconfig.Planner.describe_step step ^ " moves <= 1 voter")
              true
              (abs (Raft.Types.voter_delta acc next) <= 1);
            Alcotest.(check bool)
              (Reconfig.Planner.describe_step step ^ " overlaps")
              true
              (Raft.Types.voters_overlap acc next);
            next)
        current steps
    in
    Alcotest.(check (list string)) "lands on target" (voter_ids target) (voter_ids final);
    Alcotest.(check bool) "same members" true (Raft.Types.same_members final target)

(* ----- cluster integration ----- *)

(* Three voters per region: under the default single-region-dynamic
   quorum a crashed leader's region must still muster a majority of its
   own voters for the successor's election quorum. *)
let six_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let test_apply_target_swap () =
  let cluster = Helpers.bootstrapped ~seed:21 ~members:(six_members ()) () in
  ignore (Helpers.write_n cluster 10);
  let leader = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  let target =
    cfg
      (List.map
         (fun m ->
           if m.Raft.Types.id = "lt2a" then
             member "lt2c" "r2" ~kind:Raft.Types.Logtailer
           else m)
         (Raft.Types.config_members (Raft.Node.config leader)))
  in
  (match Reconfig.Healer.apply_target cluster ~target with
  | Ok n -> Alcotest.(check int) "four committed steps" 4 n
  | Error e -> Alcotest.failf "apply_target: %s" e);
  let final = Option.get (Reconfig.Healer.newest_config cluster) in
  Alcotest.(check bool) "lt2a evicted" false (Raft.Types.is_member final "lt2a");
  Alcotest.(check bool) "lt2c voter" true
    (match Raft.Types.find_member final "lt2c" with
    | Some m -> m.Raft.Types.voter
    | None -> false);
  (* the ring is still writable and the newcomer converges *)
  Helpers.check_ok "write after swap" (Helpers.direct_write cluster ~key:"post" ~value:"v");
  let caught_up () =
    match (Myraft.Cluster.raft_of cluster "lt2c", Myraft.Cluster.raft_of cluster "mysql1") with
    | Some r, Some l ->
      Binlog.Opid.index (Raft.Node.last_opid r) >= Raft.Node.commit_index l
    | _ -> false
  in
  Alcotest.(check bool) "replacement caught up" true
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) caught_up)

(* The self-healing loop must restore full redundancy after a permanent
   node kill with no operator input: detect, provision, join-as-learner,
   catch up, promote, evict. *)
let test_healer_replaces_dead_voter () =
  let cluster = Helpers.bootstrapped ~seed:23 ~members:(six_members ()) () in
  ignore (Helpers.write_n cluster 10);
  let healer =
    Reconfig.Healer.start ~check_interval:(0.25 *. s) ~dead_after:(2.0 *. s) cluster
  in
  Myraft.Cluster.crash cluster "lt2b";
  let replaced () = Reconfig.Healer.replacements healer <> [] in
  Alcotest.(check bool) "replacement completed" true
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) replaced);
  Reconfig.Healer.stop healer;
  let r = List.hd (Reconfig.Healer.replacements healer) in
  Alcotest.(check string) "corpse" "lt2b" r.Reconfig.Healer.r_corpse;
  let final = Option.get (Reconfig.Healer.newest_config cluster) in
  Alcotest.(check bool) "corpse evicted" false (Raft.Types.is_member final "lt2b");
  (match Raft.Types.find_member final r.Reconfig.Healer.r_replacement with
  | Some m ->
    Alcotest.(check bool) "replacement is a voter" true m.Raft.Types.voter;
    Alcotest.(check string) "same region" "r2" m.Raft.Types.region
  | None -> Alcotest.fail "replacement not in the final config");
  Alcotest.(check int) "redundancy restored" 6
    (List.length (Raft.Types.config_members final));
  Helpers.check_ok "ring writable" (Helpers.direct_write cluster ~key:"post" ~value:"v")

(* A revived node cancels its own replacement if the healer has not
   spent a membership change on it yet. *)
let test_healer_cancels_on_revival () =
  let cluster = Helpers.bootstrapped ~seed:25 ~members:(six_members ()) () in
  let healer =
    Reconfig.Healer.start ~check_interval:(0.25 *. s) ~dead_after:(20.0 *. s) cluster
  in
  Myraft.Cluster.crash cluster "lt2b";
  Myraft.Cluster.run_for cluster (5.0 *. s);
  Myraft.Cluster.restart cluster "lt2b";
  Myraft.Cluster.run_for cluster (30.0 *. s);
  Reconfig.Healer.stop healer;
  Alcotest.(check (list (pair string string))) "no replacement ran" []
    (List.map
       (fun r -> (r.Reconfig.Healer.r_corpse, r.Reconfig.Healer.r_replacement))
       (Reconfig.Healer.replacements healer));
  let final = Option.get (Reconfig.Healer.newest_config cluster) in
  Alcotest.(check bool) "revived node still a member" true
    (Raft.Types.is_member final "lt2b")

(* Satellite regression: the leader crashes right after initiating a
   membership change, before it commits.  has_pending_config_change is
   derived from config commitment under the *current* term, so the
   successor must not inherit a stuck latch — it finishes or supersedes
   the change and accepts new ones. *)
let test_leader_crash_mid_reconfig_does_not_wedge () =
  let cluster = Helpers.bootstrapped ~seed:27 ~members:(six_members ()) () in
  ignore (Helpers.write_n cluster 5);
  let leader = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Myraft.Cluster.add_server cluster (Myraft.Cluster.logtailer "lt2c" "r2");
  (match
     Raft.Node.add_member leader
       (member "lt2c" "r2" ~voter:false ~kind:Raft.Types.Logtailer)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add_member: %s" e);
  Alcotest.(check bool) "change pending on the initiator" true
    (Raft.Node.has_pending_config_change leader);
  (* kill the initiator before the change can commit *)
  Myraft.Cluster.crash cluster "mysql1";
  let new_leader () =
    match Myraft.Cluster.raft_leader cluster with
    | Some id when id <> "mysql1" -> Myraft.Cluster.raft_of cluster id
    | _ -> None
  in
  Alcotest.(check bool) "successor elected" true
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () -> new_leader () <> None));
  (* the successor settles: no stuck pending-change latch *)
  Alcotest.(check bool) "latch clears on the successor" true
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match new_leader () with
         | Some r -> not (Raft.Node.has_pending_config_change r)
         | None -> false));
  (* and it accepts a fresh membership change *)
  let accepted = ref false in
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         (match new_leader () with
         | Some r when not (Raft.Node.has_pending_config_change r) -> (
           match Raft.Node.demote_voter r "lt2a" with
           | Ok _ -> accepted := true
           | Error _ -> ())
         | _ -> ());
         !accepted));
  Alcotest.(check bool) "successor accepts a new change" true !accepted

(* The installed config and its identity are durable: a restarted node
   comes back with the config it had adopted, not the seed config. *)
let test_config_durable_across_restart () =
  let cluster = Helpers.bootstrapped ~seed:29 ~members:(six_members ()) () in
  let leader = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  (match Raft.Node.demote_voter leader "lt2b" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "demote: %s" e);
  Alcotest.(check bool) "change committed" true
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         not (Raft.Node.has_pending_config_change leader)));
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let cid_before =
    Raft.Node.config_id (Option.get (Myraft.Cluster.raft_of cluster "lt2a"))
  in
  Myraft.Cluster.crash cluster "lt2a";
  Myraft.Cluster.run_for cluster (1.0 *. s);
  Myraft.Cluster.restart cluster "lt2a";
  let restarted = Option.get (Myraft.Cluster.raft_of cluster "lt2a") in
  Alcotest.(check bool) "identity survived the restart" true
    (Raft.Types.cfg_id_compare (Raft.Node.config_id restarted) cid_before >= 0);
  Alcotest.(check bool) "membership survived the restart" true
    (match Raft.Types.find_member (Raft.Node.config restarted) "lt2b" with
    | Some m -> not m.Raft.Types.voter
    | None -> false)

let suites =
  [
    ( "reconfig.planner",
      [
        Alcotest.test_case "noop" `Quick test_planner_noop;
        Alcotest.test_case "add voter = learner first" `Quick
          test_planner_add_voter_is_two_steps;
        Alcotest.test_case "swap voter order" `Quick test_planner_swap_voter;
        Alcotest.test_case "demote + remove learner" `Quick
          test_planner_demote_and_remove_learner;
        Alcotest.test_case "retained id region change rejected" `Quick
          test_planner_rejects_retained_id_region_change;
        Alcotest.test_case "invalid targets rejected" `Quick
          test_planner_rejects_invalid_targets;
        Alcotest.test_case "steps are single safe voter changes" `Quick
          test_planner_steps_are_single_voter_changes;
      ] );
    ( "reconfig.healer",
      [
        Alcotest.test_case "apply_target swaps a member" `Quick test_apply_target_swap;
        Alcotest.test_case "replaces a dead voter unattended" `Quick
          test_healer_replaces_dead_voter;
        Alcotest.test_case "revival cancels the replacement" `Quick
          test_healer_cancels_on_revival;
      ] );
    ( "reconfig.logless",
      [
        Alcotest.test_case "leader crash mid-reconfig does not wedge" `Quick
          test_leader_crash_mid_reconfig_does_not_wedge;
        Alcotest.test_case "config durable across restart" `Quick
          test_config_durable_across_restart;
      ] );
  ]
