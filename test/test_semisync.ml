(* Prior-setup (semi-sync) tests: commit gating on acker acks, async
   replica apply, orchestrator-driven failover and graceful promotion. *)

let ms = Helpers.ms
let s = Helpers.s

let members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let bootstrapped ?(seed = 19) () =
  let cluster = Semisync.Cluster.create ~seed ~replicaset:"ss-test" ~members:(members ()) () in
  Semisync.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

let direct_write ?(timeout = 5.0 *. s) cluster ~key ~value =
  match Semisync.Cluster.primary cluster with
  | None -> Error "no primary"
  | Some server ->
    let result = ref None in
    Semisync.Server.submit_write server ~table:"t"
      ~ops:[ Binlog.Event.Insert { key; value } ]
      ~reply:(fun gtid -> result := Some (gtid <> None));
    let settled =
      Semisync.Cluster.run_until cluster ~step:ms ~timeout (fun () -> !result <> None)
    in
    if not settled then Error "timed out"
    else if !result = Some true then Ok ()
    else Error "rejected"

let test_write_commits_with_acker_ack () =
  let cluster = bootstrapped () in
  (match direct_write cluster ~key:"k" ~value:"v" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" e);
  let primary = Option.get (Semisync.Cluster.primary cluster) in
  Alcotest.(check (option string)) "row committed" (Some "v")
    (Storage.Engine.get (Semisync.Server.storage primary) ~table:"t" ~key:"k");
  (* the semi-sync ackers received the transaction *)
  Semisync.Cluster.run_for cluster (1.0 *. s);
  let acker = Option.get (Semisync.Cluster.acker cluster "lt1a") in
  Alcotest.(check bool) "acker has the entry" true (Semisync.Acker.last_seq acker >= 1)

let test_write_blocks_without_ackers () =
  let cluster = bootstrapped () in
  (* kill every acker: semi-sync wait can never be satisfied *)
  List.iter
    (fun id -> Semisync.Cluster.crash cluster id)
    [ "lt1a"; "lt1b"; "lt2a"; "lt2b" ];
  match direct_write cluster ~timeout:(3.0 *. s) ~key:"k" ~value:"v" with
  | Ok () -> Alcotest.fail "commit without any acker ack"
  | Error _ -> ()

let test_replicas_apply_async () =
  let cluster = bootstrapped () in
  for i = 1 to 10 do
    ignore (direct_write cluster ~key:(Printf.sprintf "k%d" i) ~value:"v")
  done;
  let converged () =
    let replica = Option.get (Semisync.Cluster.server cluster "mysql2") in
    Semisync.Server.applied_seq replica >= 10
  in
  Alcotest.(check bool) "replica applied" true
    (Semisync.Cluster.run_until cluster ~timeout:(10.0 *. s) converged);
  let replica = Option.get (Semisync.Cluster.server cluster "mysql2") in
  Alcotest.(check (option string)) "row on replica" (Some "v")
    (Storage.Engine.get (Semisync.Server.storage replica) ~table:"t" ~key:"k7")

let test_orchestrated_failover () =
  let cluster = bootstrapped () in
  ignore (direct_write cluster ~key:"before" ~value:"v");
  Semisync.Cluster.crash cluster "mysql1";
  let promoted () =
    match Semisync.Cluster.primary cluster with
    | Some srv -> Semisync.Server.id srv = "mysql2"
    | None -> false
  in
  (* external detection + heavy-tailed remediation: give it generous time *)
  Alcotest.(check bool) "failover promotes mysql2" true
    (Semisync.Cluster.run_until cluster ~step:(100.0 *. ms) ~timeout:(400.0 *. s) promoted);
  Alcotest.(check int) "orchestrator counted it" 1
    (Semisync.Orchestrator.failovers (Semisync.Cluster.orchestrator cluster));
  (* new primary accepts writes *)
  match direct_write cluster ~key:"after" ~value:"v" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write after failover: %s" e

let test_graceful_promotion () =
  let cluster = bootstrapped () in
  ignore (direct_write cluster ~key:"before" ~value:"v");
  let orch = Semisync.Cluster.orchestrator cluster in
  let finished = ref false in
  (match
     Semisync.Orchestrator.graceful_promotion orch ~target:"mysql2" ~on_done:(fun () ->
         finished := true)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "promotion refused: %s" e);
  Alcotest.(check bool) "promotion completes" true
    (Semisync.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () -> !finished));
  let new_primary = Option.get (Semisync.Cluster.primary cluster) in
  Alcotest.(check string) "mysql2 now primary" "mysql2" (Semisync.Server.id new_primary);
  let old_primary = Option.get (Semisync.Cluster.server cluster "mysql1") in
  Alcotest.(check bool) "mysql1 demoted" true
    (Semisync.Server.role old_primary = Semisync.Server.Replica)

let test_restart_truncates_divergent_tail () =
  let cluster = bootstrapped () in
  ignore (direct_write cluster ~key:"a" ~value:"1");
  let primary = Option.get (Semisync.Cluster.server cluster "mysql1") in
  (* write reaches binlog but commit is withheld: crash while in flight
     is emulated by appending directly then crashing *)
  Semisync.Cluster.crash cluster "mysql1";
  let before = Semisync.Server.last_seq primary in
  Semisync.Cluster.restart cluster "mysql1";
  Alcotest.(check bool) "binlog tail beyond engine point discarded" true
    (Semisync.Server.last_seq primary <= before);
  Alcotest.(check int) "log matches engine recovery point"
    (Binlog.Opid.index (Storage.Engine.last_committed_opid (Semisync.Server.storage primary)))
    (Semisync.Server.last_seq primary)

let test_acker_truncates_divergent_tail_after_failover () =
  let cluster = bootstrapped () in
  ignore (direct_write cluster ~key:"base" ~value:"v");
  Semisync.Cluster.run_for cluster (1.0 *. s);
  (* isolate the primary together with nothing else: its next write still
     reaches the in-region ackers (they share its fate in this partition
     model, so instead isolate just the other MySQL): mysql2 misses the
     write while lt1a/lt1b ack it *)
  Sim.Network.isolate_node (Semisync.Cluster.network cluster) "mysql2";
  ignore (direct_write cluster ~key:"acked-only" ~value:"v");
  Semisync.Cluster.run_for cluster (1.0 *. s);
  Sim.Network.heal_node (Semisync.Cluster.network cluster) "mysql2";
  (* primary dies before mysql2 ever receives that write; failover picks
     mysql2 (best surviving replica) — the ackers are now AHEAD *)
  Semisync.Cluster.crash cluster "mysql1";
  let promoted () =
    match Semisync.Cluster.primary cluster with
    | Some srv -> Semisync.Server.id srv = "mysql2"
    | None -> false
  in
  Alcotest.(check bool) "mysql2 promoted" true
    (Semisync.Cluster.run_until cluster ~step:(100.0 *. ms) ~timeout:(400.0 *. s) promoted);
  (* new writes force the ackers to truncate their divergent tail and
     follow the new stream *)
  (match direct_write cluster ~key:"after" ~value:"v" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write after failover: %s" e);
  Semisync.Cluster.run_for cluster (2.0 *. s);
  let acker = Option.get (Semisync.Cluster.acker cluster "lt1a") in
  let new_primary = Option.get (Semisync.Cluster.primary cluster) in
  Alcotest.(check int) "acker follows the new stream"
    (Semisync.Server.last_seq new_primary)
    (Semisync.Acker.last_seq acker)
  (* note: the client-acknowledged write "acked-only" is LOST — the
     semi-sync durability gap that motivated MyRaft (§1.1) *)

let test_ship_retry_after_acker_outage () =
  let cluster = bootstrapped () in
  Semisync.Cluster.crash cluster "lt1b";
  (* writes keep committing through the surviving acker *)
  for i = 1 to 5 do
    match direct_write cluster ~key:(Printf.sprintf "o%d" i) ~value:"v" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "write %d: %s" i e
  done;
  Semisync.Cluster.restart cluster "lt1b";
  (* the periodic ship retry backfills the restarted acker *)
  let caught_up () =
    let acker = Option.get (Semisync.Cluster.acker cluster "lt1b") in
    let primary = Option.get (Semisync.Cluster.primary cluster) in
    Semisync.Acker.last_seq acker = Semisync.Server.last_seq primary
  in
  Alcotest.(check bool) "acker backfilled by ship retries" true
    (Semisync.Cluster.run_until cluster ~timeout:(10.0 *. s) caught_up)

let suites =
  [
    ( "semisync",
      [
        Alcotest.test_case "commit gated on acker ack" `Quick test_write_commits_with_acker_ack;
        Alcotest.test_case "blocks without ackers" `Quick test_write_blocks_without_ackers;
        Alcotest.test_case "replicas apply async" `Quick test_replicas_apply_async;
        Alcotest.test_case "orchestrated failover" `Quick test_orchestrated_failover;
        Alcotest.test_case "graceful promotion" `Quick test_graceful_promotion;
        Alcotest.test_case "restart truncates divergent tail" `Quick
          test_restart_truncates_divergent_tail;
        Alcotest.test_case "acker truncates divergent tail after failover" `Quick
          test_acker_truncates_divergent_tail_after_failover;
        Alcotest.test_case "ship retry after acker outage" `Quick
          test_ship_retry_after_acker_outage;
      ] );
  ]
