(* Workload generator and failure-injection tests over both backends. *)

let ms = Helpers.ms
let s = Helpers.s

let test_open_loop_measures_latency () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"c1" ~region:"r1"
      ~client_latency:(100.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:500.0;
  Myraft.Cluster.run_for cluster (5.0 *. s);
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let st = Workload.Generator.stats gen in
  Alcotest.(check bool) "enough commits" true (st.Workload.Generator.committed > 1000);
  Alcotest.(check int) "no rejects in steady state" 0 st.Workload.Generator.rejected;
  let h = st.Workload.Generator.latencies in
  (* latency must include the ~200us client RTT plus the commit path *)
  Alcotest.(check bool) "plausible latency floor" true
    (Stats.Histogram.min_value h > 200.0);
  Alcotest.(check bool) "plausible latency ceiling" true
    (Stats.Histogram.percentile h 99.0 < 50_000.0)

let test_closed_loop_throughput_scales_with_threads () =
  let run threads =
    let cluster =
      Helpers.bootstrapped ~seed:(100 + threads)
        ~members:(Myraft.Cluster.small_members ()) ()
    in
    let backend = Workload.Backend.myraft cluster in
    let gen =
      Workload.Generator.create ~backend ~client_id:"c1" ~region:"r1"
        ~client_latency:(5.0 *. Sim.Engine.us) ()
    in
    Workload.Generator.start_closed_loop gen ~threads;
    Myraft.Cluster.run_for cluster (5.0 *. s);
    Workload.Generator.stop gen;
    (Workload.Generator.stats gen).Workload.Generator.committed
  in
  let one = run 1 and eight = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads (%d) beat 1 thread (%d)" eight one)
    true
    (float_of_int eight > 2.0 *. float_of_int one)

let test_open_loop_survives_failover () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"c1" ~region:"r1"
      ~client_latency:(100.0 *. Sim.Engine.us) ~write_timeout:(3.0 *. s) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:200.0;
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Myraft.Cluster.crash cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.run_for cluster (5.0 *. s);
  Workload.Generator.stop gen;
  let st = Workload.Generator.stats gen in
  (* the generator keeps issuing and commits resume on the new primary *)
  Alcotest.(check bool) "losses during failover" true
    (st.Workload.Generator.timed_out + st.Workload.Generator.rejected > 0);
  Alcotest.(check bool) "commits resumed" true
    (st.Workload.Generator.committed > st.Workload.Generator.timed_out)

let test_generator_against_semisync_backend () =
  let members = Myraft.Cluster.single_region_members () in
  let ss = Semisync.Cluster.create ~seed:3 ~replicaset:"wk" ~members () in
  Semisync.Cluster.bootstrap ss ~leader_id:"mysql1";
  let backend = Workload.Backend.semisync ss in
  let gen =
    Workload.Generator.create ~backend ~client_id:"c1" ~region:"r1"
      ~client_latency:(100.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:300.0;
  Semisync.Cluster.run_for ss (3.0 *. s);
  Workload.Generator.stop gen;
  Semisync.Cluster.run_for ss (1.0 *. s);
  Alcotest.(check bool) "semisync backend commits" true
    ((Workload.Generator.stats gen).Workload.Generator.committed > 500)

let test_failure_injection_preserves_consistency () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.single_region_members ()) () in
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"load" ~region:"r1"
      ~client_latency:(100.0 *. Sim.Engine.us) ~write_timeout:(10.0 *. s) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:100.0;
  let injector =
    Workload.Failure_injection.start cluster ~kind:Workload.Failure_injection.Crash_leader
      ~interval:(10.0 *. s) ~restart_after:(4.0 *. s)
  in
  Myraft.Cluster.run_for cluster (35.0 *. s);
  Workload.Failure_injection.stop injector;
  Workload.Generator.stop gen;
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
         Myraft.Cluster.primary cluster <> None));
  Myraft.Cluster.run_for cluster (10.0 *. s);
  Alcotest.(check bool) "injections happened" true
    (Workload.Failure_injection.injections injector >= 2);
  match Workload.Failure_injection.consistency_check cluster with
  | Ok n -> Alcotest.(check bool) "progress" true (n > 0)
  | Error e -> Alcotest.failf "divergence: %s" e

let test_shadow_trace_deterministic () =
  let t1 = Workload.Shadow.record ~seed:9 ~rate_per_s:100.0 ~duration:(2.0 *. s) () in
  let t2 = Workload.Shadow.record ~seed:9 ~rate_per_s:100.0 ~duration:(2.0 *. s) () in
  Alcotest.(check int) "same length" (Workload.Shadow.length t1) (Workload.Shadow.length t2);
  Alcotest.(check int) "same bytes" (Workload.Shadow.total_bytes t1)
    (Workload.Shadow.total_bytes t2);
  Alcotest.(check bool) "plausible op count" true
    (abs (Workload.Shadow.length t1 - 200) < 60)

let test_shadow_replay_identical_on_both_stacks () =
  let trace = Workload.Shadow.record ~seed:10 ~rate_per_s:200.0 ~duration:(3.0 *. s) () in
  (* MyRaft side *)
  let my_cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let my_gen =
    Workload.Shadow.replay trace ~backend:(Workload.Backend.myraft my_cluster)
      ~region:"r1" ~client_latency:(100.0 *. Sim.Engine.us)
  in
  Myraft.Cluster.run_for my_cluster (5.0 *. s);
  (* Semi-sync side *)
  let ss_cluster =
    Semisync.Cluster.create ~seed:10 ~replicaset:"ss"
      ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  Semisync.Cluster.bootstrap ss_cluster ~leader_id:"mysql1";
  let ss_gen =
    Workload.Shadow.replay trace ~backend:(Workload.Backend.semisync ss_cluster)
      ~region:"r1" ~client_latency:(100.0 *. Sim.Engine.us)
  in
  Semisync.Cluster.run_for ss_cluster (5.0 *. s);
  let my_st = Workload.Generator.stats my_gen and ss_st = Workload.Generator.stats ss_gen in
  (* identical inputs on both stacks *)
  Alcotest.(check int) "same issued" my_st.Workload.Generator.issued
    ss_st.Workload.Generator.issued;
  Alcotest.(check int) "myraft committed all" (Workload.Shadow.length trace)
    my_st.Workload.Generator.committed;
  Alcotest.(check int) "semisync committed all" (Workload.Shadow.length trace)
    ss_st.Workload.Generator.committed;
  (* identical keys landed: the hottest rows exist on both primaries *)
  let my_primary = Option.get (Myraft.Cluster.primary my_cluster) in
  let ss_primary = Option.get (Semisync.Cluster.primary ss_cluster) in
  List.iter
    (fun op ->
      let key = op.Workload.Shadow.key in
      Alcotest.(check bool)
        ("key " ^ key ^ " on both")
        true
        (Storage.Engine.get (Myraft.Server.storage my_primary) ~table:"shadow" ~key <> None
        && Storage.Engine.get (Semisync.Server.storage ss_primary) ~table:"shadow" ~key
           <> None))
    (Workload.Shadow.ops trace)

(* Key-skew knob: draw a large sample from each distribution and check
   its shape.  Pure generator-side test — no cluster traffic needed. *)
let test_key_dist_shapes () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let backend = Workload.Backend.myraft cluster in
  let sample name key_dist =
    let gen =
      Workload.Generator.create ~backend ~client_id:("dist-" ^ name) ~region:"r1"
        ~key_space:100 ~key_dist ()
    in
    let counts = Array.make 100 0 in
    for _ = 1 to 20_000 do
      let i = Workload.Generator.draw_key_index gen in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < 100);
      counts.(i) <- counts.(i) + 1
    done;
    counts
  in
  (* uniform: every key within 3x of the 200-expected mean *)
  let u = sample "uniform" Workload.Generator.Uniform in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "uniform key %d plausible (%d)" i c)
        true
        (c > 66 && c < 600))
    u;
  (* zipf(1.0): rank 0 hottest, heavily skewed, long tail still sampled *)
  let z = sample "zipf" (Workload.Generator.Zipf 1.0) in
  Alcotest.(check bool) "zipf head dominates" true (z.(0) > 3 * z.(9));
  Alcotest.(check bool)
    (Printf.sprintf "zipf head is hot (%d)" z.(0))
    true
    (z.(0) > 2_000);
  Alcotest.(check bool) "zipf monotone-ish head" true (z.(0) > z.(1) && z.(1) > z.(4));
  (* hot-spot: 90% of draws land on the first 5 keys *)
  let h = sample "hotspot" (Workload.Generator.Hot_spot { hot_fraction = 0.9; hot_keys = 5 }) in
  let hot = Array.fold_left ( + ) 0 (Array.sub h 0 5) in
  Alcotest.(check bool)
    (Printf.sprintf "hot spot concentrates (%d/20000)" hot)
    true
    (hot > 17_000 && hot < 19_500);
  Alcotest.(check bool) "cold tail still sampled" true (Array.exists (fun c -> c > 0) (Array.sub h 5 95))

let suites =
  [
    ( "workload.shadow",
      [
        Alcotest.test_case "trace recording deterministic" `Quick
          test_shadow_trace_deterministic;
        Alcotest.test_case "replay identical on both stacks" `Quick
          test_shadow_replay_identical_on_both_stacks;
      ] );
    ( "workload",
      [
        Alcotest.test_case "open loop measures latency" `Quick test_open_loop_measures_latency;
        Alcotest.test_case "closed loop scales with threads" `Quick
          test_closed_loop_throughput_scales_with_threads;
        Alcotest.test_case "open loop survives failover" `Quick test_open_loop_survives_failover;
        Alcotest.test_case "semisync backend" `Quick test_generator_against_semisync_backend;
        Alcotest.test_case "failure injection keeps consistency" `Quick
          test_failure_injection_preserves_consistency;
        Alcotest.test_case "key distribution shapes" `Quick test_key_dist_shapes;
      ] );
  ]
