(* Tests for the consistency-tiered read path: leader-lease math and
   revocation (LeaseGuard), the event-driven WAIT_FOR_EXECUTED_GTID
   replacement, the four service tiers end-to-end, and a qcheck
   property that linearizable reads never observe stale values under
   chaos faults. *)

open Helpers

let us = Sim.Engine.us

(* Primary in r1, one follower region: followers serve eventual/bounded
   locally and forward ReadIndex across the region link. *)
let two_region_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let with_raft_params f =
  {
    Myraft.Params.default with
    Myraft.Params.raft = f Myraft.Params.default.Myraft.Params.raft;
  }

(* Like [Helpers.direct_write] but returns the committed GTID. *)
let write_gtid ?(table = "t") cluster ~key ~value =
  match Myraft.Cluster.primary cluster with
  | None -> Error "no primary"
  | Some server ->
    let result = ref None in
    Myraft.Server.submit_write server ~table
      ~ops:[ Binlog.Event.Insert { key; value } ]
      ~reply:(fun outcome -> result := Some outcome);
    let ok =
      Myraft.Cluster.run_until cluster ~step:ms ~timeout:(5.0 *. s) (fun () ->
          !result <> None)
    in
    if not ok then Error "write timed out"
    else
      match !result with
      | Some (Myraft.Wire.Committed { gtid }) -> Ok gtid
      | Some (Myraft.Wire.Rejected reason) -> Error reason
      | None -> Error "unreachable"

(* Serve one read on node [id] and run the engine until it settles. *)
let read_sync ?(timeout = 10.0 *. s) cluster id ~level ~key =
  match Myraft.Cluster.server cluster id with
  | None -> Alcotest.failf "no server %s" id
  | Some srv ->
    let result = ref None in
    Myraft.Server.serve_read srv ~level ~table:"t" ~key (fun o -> result := Some o);
    ignore
      (Myraft.Cluster.run_until cluster ~step:ms ~timeout (fun () -> !result <> None));
    match !result with
    | Some o -> o
    | None -> Alcotest.failf "read on %s never settled" id

let expect_value label outcome expected =
  match outcome with
  | Read.Service.Value v ->
    Alcotest.(check (option string)) label expected v
  | Read.Service.Rejected { reason; _ } ->
    Alcotest.failf "%s: unexpectedly rejected (%s)" label reason

let counter cluster name =
  Obs.Metrics.counter_of (Myraft.Cluster.metrics_snapshot cluster) name

(* ----- leader-lease math ----- *)

(* Default raft params: 3 missed heartbeats x 500 ms - 50 ms margin =
   a 1450 ms lease duration. *)
let lease_duration p =
  (float_of_int p.Raft.Node.missed_heartbeats *. p.Raft.Node.heartbeat_interval)
  -. p.Raft.Node.lease_drift_margin

let test_lease_valid_on_healthy_leader () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  ignore (write_n cluster 3);
  let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Alcotest.(check bool) "lease valid" true (Raft.Node.lease_valid raft);
  let slack =
    Raft.Node.lease_until raft -. Sim.Engine.now (Myraft.Cluster.engine cluster)
  in
  Alcotest.(check bool) "expiry within one lease duration" true
    (slack > 0.0 && slack <= lease_duration Myraft.Params.default.Myraft.Params.raft)

let test_drift_margin_shifts_expiry () =
  (* Same seed, params differing only in the drift margin: identical
     event timelines, so the expiries differ by exactly the margin
     delta. *)
  let until margin =
    let params =
      with_raft_params (fun r -> { r with Raft.Node.lease_drift_margin = margin })
    in
    let cluster = bootstrapped ~params ~members:(two_region_members ()) () in
    Myraft.Cluster.run_for cluster (2.0 *. s);
    Raft.Node.lease_until (Option.get (Myraft.Cluster.raft_of cluster "mysql1"))
  in
  let m1 = 50.0 *. ms and m2 = 250.0 *. ms in
  Alcotest.(check (float 1.0))
    "expiry shifted by the margin delta" (m2 -. m1)
    (until m1 -. until m2)

let test_excessive_margin_disables_lease () =
  (* Margin at the election timeout: lease duration <= 0, so the fast
     path is off and linearizable reads pay the confirmation round. *)
  let params =
    with_raft_params (fun r ->
        { r with Raft.Node.lease_drift_margin = 1_500.0 *. ms })
  in
  let cluster = bootstrapped ~params ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Alcotest.(check bool) "lease never valid" false (Raft.Node.lease_valid raft);
  expect_value "read still served" (read_sync cluster "mysql1" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v");
  Alcotest.(check bool) "served by a quorum round" true
    (counter cluster "read.quorum_served" >= 1);
  Alcotest.(check int) "no lease serves" 0 (counter cluster "read.lease_served")

let test_lease_expires_without_acks () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Alcotest.(check bool) "lease valid before isolation" true (Raft.Node.lease_valid raft);
  Myraft.Cluster.isolate cluster "mysql1";
  (* Sit out two election timeouts: nobody acks, so the lease runs off
     its last quorum-acked send time and dies while the node still
     believes itself leader. *)
  Myraft.Cluster.run_for cluster (3.0 *. s);
  Alcotest.(check bool) "still (stale) leader" true (Raft.Node.is_leader raft);
  Alcotest.(check bool) "lease expired" false (Raft.Node.lease_valid raft)

let test_lease_revoked_on_demotion () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Myraft.Cluster.isolate cluster "mysql1";
  (* the stale leader still claims the role, so look for any OTHER node
     that won an election *)
  let other_leader () =
    List.exists
      (fun id ->
        id <> "mysql1"
        &&
        match Myraft.Cluster.raft_of cluster id with
        | Some r -> Raft.Node.is_leader r
        | None -> false)
      (Myraft.Cluster.member_ids cluster)
  in
  let elected =
    Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () -> other_leader ())
  in
  Alcotest.(check bool) "another leader elected" true elected;
  Myraft.Cluster.heal cluster "mysql1";
  let demoted =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
        not (Raft.Node.is_leader raft))
  in
  Alcotest.(check bool) "old leader demoted" true demoted;
  let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Alcotest.(check bool) "lease gone" false (Raft.Node.lease_valid raft);
  Alcotest.(check bool) "revocation counted" true
    (counter cluster "raft.lease_revocations" >= 1)

let test_lease_blocked_during_transfer () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  ignore (write_n cluster 2);
  let raft = Option.get (Myraft.Cluster.raft_of cluster "mysql1") in
  Alcotest.(check bool) "lease valid before transfer" true (Raft.Node.lease_valid raft);
  (* LeaseGuard: initiating the transfer voids the lease BEFORE the
     TimeoutNow mock election can elect the target. *)
  (match Myraft.Cluster.transfer_leadership cluster ~target:"mysql2" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer: %s" e);
  Alcotest.(check bool) "lease blocked at initiation" true (Raft.Node.lease_blocked raft);
  Alcotest.(check bool) "lease invalid at initiation" false (Raft.Node.lease_valid raft);
  let done_ =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        Myraft.Cluster.raft_leader cluster = Some "mysql2")
  in
  Alcotest.(check bool) "target took over" true done_;
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Alcotest.(check bool) "old leader has no lease" false (Raft.Node.lease_valid raft);
  let raft2 = Option.get (Myraft.Cluster.raft_of cluster "mysql2") in
  Alcotest.(check bool) "new leader earns its own lease" true
    (Raft.Node.lease_valid raft2)

(* ----- event-driven WAIT_FOR_EXECUTED_GTID ----- *)

let test_gtid_wait_fires_on_commit_event () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let g1 =
    match write_gtid cluster ~key:"k1" ~value:"v1" with
    | Ok g -> g
    | Error e -> Alcotest.failf "seed write: %s" e
  in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let engine = Myraft.Cluster.engine cluster in
  (* The primary assigns consecutive gnos, so the next commit's GTID is
     known before it exists — park a waiter on it. *)
  let next =
    Binlog.Gtid.make ~source:(Binlog.Gtid.source g1) ~gno:(Binlog.Gtid.gno g1 + 1)
  in
  let commit_time = ref neg_infinity in
  Storage.Engine.subscribe_commit (Myraft.Server.storage primary) (fun gtid _ ->
      if Binlog.Gtid.equal gtid next then commit_time := Sim.Engine.now engine);
  let fire_time = ref neg_infinity and fired = ref None in
  Myraft.Server.wait_for_executed_gtid primary next ~timeout:(5.0 *. s)
    ~k:(fun ok ->
      fired := Some ok;
      fire_time := Sim.Engine.now engine);
  check_ok "second write" (direct_write cluster ~key:"k2" ~value:"v2");
  Alcotest.(check (option bool)) "waiter fired true" (Some true) !fired;
  Alcotest.(check bool) "commit observed" true (!commit_time > neg_infinity);
  (* The regression: the waiter fires AT the engine-commit instant, not
     on the next tick of the old 500 us busy-poll. *)
  Alcotest.(check (float 0.0)) "fired at the commit instant" !commit_time !fire_time

let test_gtid_wait_timeout () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let engine = Myraft.Cluster.engine cluster in
  let never = Binlog.Gtid.make ~source:"mysql1" ~gno:999_999 in
  let t0 = Sim.Engine.now engine in
  let fire_time = ref neg_infinity and fired = ref None in
  Myraft.Server.wait_for_executed_gtid primary never ~timeout:(50.0 *. ms)
    ~k:(fun ok ->
      fired := Some ok;
      fire_time := Sim.Engine.now engine);
  Myraft.Cluster.run_for cluster (200.0 *. ms);
  Alcotest.(check (option bool)) "timed out false" (Some false) !fired;
  Alcotest.(check (float (10.0 *. us))) "at the deadline" (t0 +. (50.0 *. ms)) !fire_time

let test_gtid_wait_already_committed () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let g =
    match write_gtid cluster ~key:"k" ~value:"v" with
    | Ok g -> g
    | Error e -> Alcotest.failf "write: %s" e
  in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let fired = ref None in
  Myraft.Server.wait_for_executed_gtid primary g ~timeout:(1.0 *. s)
    ~k:(fun ok -> fired := Some ok);
  (* no engine run: the answer must be synchronous *)
  Alcotest.(check (option bool)) "synchronous true" (Some true) !fired

(* ----- the four tiers end-to-end ----- *)

let test_eventual_serves_locally () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  Myraft.Cluster.run_for cluster (1.0 *. s);
  expect_value "follower eventual"
    (read_sync cluster "mysql2" ~level:Read.Level.Eventual ~key:"k")
    (Some "v");
  expect_value "missing row reads null"
    (read_sync cluster "mysql2" ~level:Read.Level.Eventual ~key:"nope")
    None

let test_linearizable_lease_fast_path () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  expect_value "leader linearizable"
    (read_sync cluster "mysql1" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v");
  Alcotest.(check bool) "lease-served" true (counter cluster "read.lease_served" >= 1)

let test_linearizable_quorum_round_when_lease_off () =
  let params = with_raft_params (fun r -> { r with Raft.Node.use_leader_lease = false }) in
  let cluster = bootstrapped ~params ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  expect_value "leader linearizable"
    (read_sync cluster "mysql1" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v");
  Alcotest.(check bool) "readindex round ran" true
    (counter cluster "raft.readindex_rounds" >= 1);
  Alcotest.(check int) "no lease serves" 0 (counter cluster "read.lease_served")

let test_linearizable_follower_forwards () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  expect_value "follower linearizable"
    (read_sync cluster "mysql2" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v");
  Alcotest.(check bool) "forwarded to the leader" true
    (counter cluster "raft.readindex_forwarded" >= 1)

let test_linearizable_sees_latest_write () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  check_ok "w1" (direct_write cluster ~key:"k" ~value:"v1");
  check_ok "w2" (direct_write cluster ~key:"k" ~value:"v2");
  (* no settling run: the read must still reflect v2 on both roles *)
  expect_value "leader sees v2"
    (read_sync cluster "mysql1" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v2");
  expect_value "follower sees v2"
    (read_sync cluster "mysql2" ~level:Read.Level.Linearizable ~key:"k")
    (Some "v2")

let test_ryw_waits_for_session_gtid () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let g =
    match write_gtid cluster ~key:"k" ~value:"mine" with
    | Ok g -> g
    | Error e -> Alcotest.failf "write: %s" e
  in
  expect_value "follower RYW waits for the token's apply"
    (read_sync cluster "mysql2" ~level:(Read.Level.Read_your_writes (Some g)) ~key:"k")
    (Some "mine");
  expect_value "no token degrades to eventual"
    (read_sync cluster "mysql2" ~level:(Read.Level.Read_your_writes None) ~key:"k")
    (Some "mine")

let test_bounded_rejects_when_stale () =
  let cluster = bootstrapped ~members:(two_region_members ()) () in
  Myraft.Cluster.run_for cluster (1.0 *. s);
  check_ok "write" (direct_write cluster ~key:"k" ~value:"v");
  Myraft.Cluster.run_for cluster (1.0 *. s);
  Sim.Network.cut_regions (Myraft.Cluster.network cluster) "r1" "r2";
  Myraft.Cluster.run_for cluster (1.0 *. s);
  (match read_sync cluster "mysql2" ~level:(Read.Level.Bounded_staleness (50.0 *. ms)) ~key:"k" with
  | Read.Service.Rejected { reason; retry_after } ->
    Alcotest.(check bool) "reason names staleness" true (contains reason "staleness");
    Alcotest.(check bool) "retry hint present" true (retry_after <> None)
  | Read.Service.Value _ ->
    Alcotest.fail "cut-off follower must not serve a 50 ms bound");
  (* the leader is its own anchor and keeps serving *)
  expect_value "leader bounded"
    (read_sync cluster "mysql1" ~level:(Read.Level.Bounded_staleness (50.0 *. ms)) ~key:"k")
    (Some "v")

(* ----- chaos property ----- *)

(* Under dropped messages, region partitions and leader crashes, a
   [Linearizable] read must never return a value older than a write
   acknowledged before the read was issued — with the lease fast path
   both on (even seeds) and off (odd seeds).  The linreg checker inside
   the nemesis run reports any such observation as a violation. *)
let prop_lin_reads_never_stale =
  QCheck.Test.make ~name:"linearizable reads never stale under chaos" ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let spec =
        match
          Chaos.Schedule.with_faults Chaos.Schedule.default
            [ "drop"; "partition"; "leader-crash" ]
        with
        | Ok s -> s
        | Error e -> failwith e
      in
      let lease = seed mod 2 = 0 in
      let r = Chaos.Nemesis.run ~spec ~lease ~seed ~steps:16 () in
      r.Chaos.Nemesis.r_lin_violations = 0 && r.Chaos.Nemesis.r_violations = [])

let suites =
  [
    ( "read.lease",
      [
        Alcotest.test_case "valid on a healthy leader" `Quick
          test_lease_valid_on_healthy_leader;
        Alcotest.test_case "drift margin shifts expiry exactly" `Quick
          test_drift_margin_shifts_expiry;
        Alcotest.test_case "margin at election timeout disables the lease" `Quick
          test_excessive_margin_disables_lease;
        Alcotest.test_case "expires when acks stop" `Quick test_lease_expires_without_acks;
        Alcotest.test_case "revoked on demotion" `Quick test_lease_revoked_on_demotion;
        Alcotest.test_case "blocked for the transfer span (LeaseGuard)" `Quick
          test_lease_blocked_during_transfer;
      ] );
    ( "read.gtid_wait",
      [
        Alcotest.test_case "fires on the commit event, not a poll tick" `Quick
          test_gtid_wait_fires_on_commit_event;
        Alcotest.test_case "timeout fires at the deadline" `Quick test_gtid_wait_timeout;
        Alcotest.test_case "already-committed answers synchronously" `Quick
          test_gtid_wait_already_committed;
      ] );
    ( "read.tiers",
      [
        Alcotest.test_case "eventual serves locally on a follower" `Quick
          test_eventual_serves_locally;
        Alcotest.test_case "linearizable via the lease fast path" `Quick
          test_linearizable_lease_fast_path;
        Alcotest.test_case "linearizable pays a round with the lease off" `Quick
          test_linearizable_quorum_round_when_lease_off;
        Alcotest.test_case "follower forwards ReadIndex to the leader" `Quick
          test_linearizable_follower_forwards;
        Alcotest.test_case "linearizable reflects the latest write" `Quick
          test_linearizable_sees_latest_write;
        Alcotest.test_case "read-your-writes waits for the session GTID" `Quick
          test_ryw_waits_for_session_gtid;
        Alcotest.test_case "bounded staleness rejects a cut-off follower" `Quick
          test_bounded_rejects_when_stale;
      ] );
    ( "read.chaos",
      [ QCheck_alcotest.to_alcotest prop_lin_reads_never_stale ] );
  ]
