(* Randomized Raft safety checks: run a ring of bare Raft nodes under a
   Chaos.Nemesis fault schedule (crashes, partitions, isolation, message
   drop/duplication/reordering, torn tails) while Chaos.Invariants
   continuously asserts the safety properties the paper relies on
   (§4.1): election safety, commit safety / log matching on committed
   prefixes, leader completeness, and post-heal convergence.

   Runs in both classic-majority and FlexiRaft single-region-dynamic
   modes over several seeds.  The full-cluster (MySQL + engine) chaos
   tests live in test_chaos.ml; this file exercises the same nemesis and
   checker against the protocol layer alone. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

type world = { h : Test_raft.harness; mutable gno : int }

let node_ids w = w.h.Test_raft.order

let up w id = (Test_raft.get w.h id).Test_raft.up

(* Control surface: the same nemesis that drives a full MyRaft cluster,
   wired to the bare harness. *)
let ops_of_harness w =
  {
    Chaos.Nemesis.node_ids = node_ids w;
    region_of = (fun id -> (Test_raft.get w.h id).Test_raft.node_region);
    is_up = up w;
    leader = (fun () -> match Test_raft.leaders w.h with [ l ] -> Some l | _ -> None);
    crash = Test_raft.crash w.h;
    restart = Test_raft.restart w.h;
    isolate = Sim.Network.isolate_node w.h.Test_raft.net;
    heal_node = Sim.Network.heal_node w.h.Test_raft.net;
    cut_regions = Sim.Network.cut_regions w.h.Test_raft.net;
    heal_regions = Sim.Network.heal_regions w.h.Test_raft.net;
    set_node_faults = Sim.Network.set_node_faults w.h.Test_raft.net;
    clear_node_faults = Sim.Network.clear_node_faults w.h.Test_raft.net;
    heal_all_network = (fun () -> Sim.Network.heal_all w.h.Test_raft.net);
    store_of = (fun id -> Some (Test_raft.get w.h id).Test_raft.store);
    transfer = (fun ~target:_ -> Error "no orchestration in the bare harness");
    clock_of =
      (fun id ->
        let n = Test_raft.get w.h id in
        if n.Test_raft.up then Some (Raft.Node.clock (Test_raft.raft n)) else None);
    set_link_faults =
      (fun ~src ~dst spec -> Sim.Network.set_link_faults w.h.Test_raft.net ~src ~dst spec);
    clear_link_faults =
      (fun ~src ~dst -> Sim.Network.clear_link_faults w.h.Test_raft.net ~src ~dst);
    force_election =
      (fun id ->
        let n = Test_raft.get w.h id in
        if n.Test_raft.up then Raft.Node.trigger_election (Test_raft.raft n));
  }

(* No storage engine behind bare Raft nodes: engine invariants are
   skipped, log/election/commit safety still apply. *)
let probes_of_harness w =
  List.map
    (fun id ->
      let n = Test_raft.get w.h id in
      {
        Chaos.Invariants.probe_id = id;
        probe_up = (fun () -> n.Test_raft.up);
        probe_raft = (fun () -> if n.Test_raft.up then Some (Test_raft.raft n) else None);
        probe_store = (fun () -> Some n.Test_raft.store);
        probe_engine = (fun () -> None);
      })
    (node_ids w)

let try_append w =
  match Test_raft.leaders w.h with
  | [ leader ] ->
    w.gno <- w.gno + 1;
    ignore
      (Raft.Node.client_append
         (Test_raft.raft (Test_raft.get w.h leader))
         (Binlog.Entry.Transaction
            {
              gtid = Binlog.Gtid.make ~source:"chaos" ~gno:w.gno;
              events =
                [
                  Binlog.Event.make
                    (Binlog.Event.Write_rows
                       {
                         table = "t";
                         ops =
                           [
                             Binlog.Event.Insert
                               { key = Printf.sprintf "k%d" w.gno; value = "v" };
                           ];
                       });
                ];
            }))
  | _ -> ()

let run_chaos ~seed ~params ~members ~steps =
  let h = Test_raft.make_harness ~seed ~params members in
  let w = { h; gno = 0 } in
  let inv =
    Chaos.Invariants.create
      ~now:(fun () -> Sim.Engine.now h.Test_raft.engine)
      ~probes:(probes_of_harness w)
      ()
  in
  let nemesis =
    Chaos.Nemesis.create ~engine:h.Test_raft.engine ~trace:h.Test_raft.trace
      ~rng:(Sim.Rng.of_int (seed * 7919))
      ~spec:Chaos.Schedule.default ~ops:(ops_of_harness w)
  in
  (* give the ring time to elect before the abuse starts *)
  Sim.Engine.run_for h.Test_raft.engine (5.0 *. s);
  for _ = 1 to steps do
    Chaos.Nemesis.step nemesis;
    try_append w;
    Sim.Engine.run_for h.Test_raft.engine (250.0 *. ms);
    Chaos.Invariants.check inv
  done;
  (* heal everything and verify convergence *)
  Chaos.Nemesis.heal_now nemesis;
  let converged () =
    match Test_raft.leaders w.h with
    | [ leader ] ->
      let target = Binlog.Log_store.last_opid (Test_raft.get w.h leader).Test_raft.store in
      Binlog.Opid.index target > 0
      && List.for_all
           (fun id ->
             Binlog.Opid.equal
               (Binlog.Log_store.last_opid (Test_raft.get w.h id).Test_raft.store)
               target)
           (node_ids w)
    | _ -> false
  in
  let ok = Test_raft.run_until w.h ~timeout:(60.0 *. s) converged in
  Alcotest.(check bool) "logs converge after healing" true ok;
  Chaos.Invariants.check inv;
  Chaos.Invariants.check_converged inv;
  (match Chaos.Invariants.violations inv with
  | [] -> ()
  | vs ->
    Alcotest.failf "seed %d: %d invariant violations, first: %s" seed (List.length vs)
      (Chaos.Invariants.violation_to_string (List.hd vs)));
  Chaos.Invariants.committed_entries inv

let majority_members () =
  [
    ("n1", "r1", true, Raft.Types.Mysql_server);
    ("n2", "r1", true, Raft.Types.Mysql_server);
    ("n3", "r1", true, Raft.Types.Mysql_server);
    ("n4", "r1", true, Raft.Types.Mysql_server);
    ("n5", "r1", true, Raft.Types.Mysql_server);
  ]

let flexi_members () =
  [
    ("a1", "r1", true, Raft.Types.Mysql_server);
    ("a2", "r1", true, Raft.Types.Logtailer);
    ("a3", "r1", true, Raft.Types.Logtailer);
    ("b1", "r2", true, Raft.Types.Mysql_server);
    ("b2", "r2", true, Raft.Types.Logtailer);
    ("b3", "r2", true, Raft.Types.Logtailer);
  ]

let test_chaos_majority () =
  List.iter
    (fun seed ->
      let committed =
        run_chaos ~seed ~params:Test_raft.majority_params ~members:(majority_members ())
          ~steps:120
      in
      if committed < 10 then Alcotest.failf "too little progress (seed %d)" seed)
    [ 1; 2; 3 ]

let test_chaos_flexiraft () =
  List.iter
    (fun seed ->
      let committed =
        run_chaos ~seed ~params:Test_raft.flexi_params ~members:(flexi_members ())
          ~steps:120
      in
      if committed < 10 then Alcotest.failf "too little progress (seed %d)" seed)
    [ 4; 5; 6 ]

let test_chaos_with_proxying () =
  let params = { Test_raft.flexi_params with Raft.Node.proxying = true } in
  let committed = run_chaos ~seed:9 ~params ~members:(flexi_members ()) ~steps:120 in
  if committed < 10 then Alcotest.fail "too little progress with proxying"

let suites =
  [
    ( "raft.safety",
      [
        Alcotest.test_case "chaos: classic majority" `Slow test_chaos_majority;
        Alcotest.test_case "chaos: flexiraft SRD" `Slow test_chaos_flexiraft;
        Alcotest.test_case "chaos: flexiraft + proxying" `Slow test_chaos_with_proxying;
      ] );
  ]
