(* Multi-Raft sharding: router hashing, mux coalescing/framing, the
   assembled multi-group deployment, and the observational-equivalence
   property against independent single-group clusters. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s
let us = Sim.Engine.us

(* ----- router ----- *)

(* Independent FNV-1a reference over the same byte stream the router
   hashes (table, 0x00, key). *)
let reference_fnv1a ~table ~key =
  let h = ref 0xcbf29ce484222325L in
  let feed c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c land 0xff))) 0x100000001b3L
  in
  String.iter feed table;
  feed '\000';
  String.iter feed key;
  !h

let test_router_hash_reference () =
  List.iter
    (fun (table, key) ->
      Alcotest.(check int64)
        (Printf.sprintf "fnv1a(%s,%s)" table key)
        (reference_fnv1a ~table ~key)
        (Shard.Router.hash ~table ~key))
    [ ("sbtest", "row-0"); ("t", ""); ("", "k"); ("a", "row-12345"); ("t0", "row-7") ]

let test_router_stability_and_spread () =
  let r1 = Shard.Router.create ~groups:4 () in
  let r2 = Shard.Router.create ~groups:4 () in
  let counts = Array.make 4 0 in
  for i = 0 to 999 do
    let key = Printf.sprintf "row-%d" i in
    let g = Shard.Router.group_of r1 ~table:"sbtest" ~key in
    Alcotest.(check int) "stable across instances" g
      (Shard.Router.group_of r2 ~table:"sbtest" ~key);
    Alcotest.(check bool) "in range" true (g >= 0 && g < 4);
    counts.(g) <- counts.(g) + 1
  done;
  Array.iteri
    (fun g n ->
      if n < 150 then
        Alcotest.failf "group %d got only %d/1000 uniform keys (skewed hash)" g n)
    counts;
  (* the table participates: same key, different tables, different digests *)
  Alcotest.(check bool) "table feeds the hash" false
    (Shard.Router.hash ~table:"t0" ~key:"row-1" = Shard.Router.hash ~table:"t1" ~key:"row-1")

let test_router_leader_cache () =
  let r = Shard.Router.create ~groups:2 () in
  Alcotest.(check (option string)) "empty" None (Shard.Router.cached_leader r ~group:0);
  Shard.Router.note_leader r ~group:0 ~node:"mysql2";
  Alcotest.(check (option string)) "cached" (Some "mysql2")
    (Shard.Router.cached_leader r ~group:0);
  Shard.Router.invalidate_leader r ~group:0;
  Alcotest.(check (option string)) "invalidated" None
    (Shard.Router.cached_leader r ~group:0)

(* ----- mux ----- *)

let make_mux ?(window = 50.0 *. us) () =
  let engine = Sim.Engine.create ~seed:5 () in
  let topology = Sim.Topology.create () in
  let mux = Shard.Mux.create ~engine ~topology ~window () in
  List.iter
    (fun id -> Shard.Mux.add_node mux ~id ~region:"r1")
    [ "a"; "b"; "c" ];
  (engine, mux)

let reply_msg write_id = Myraft.Wire.Write_reply { write_id; outcome = Myraft.Wire.Rejected "x" }

let wid = function
  | Myraft.Wire.Write_reply { write_id; _ } -> write_id
  | _ -> Alcotest.fail "unexpected frame payload"

let test_mux_coalesces_and_demuxes () =
  let engine, mux = make_mux () in
  let got0 = ref [] and got1 = ref [] in
  Shard.Mux.register mux ~group:0 "b" (fun ~src:_ msg -> got0 := wid msg :: !got0);
  Shard.Mux.register mux ~group:1 "b" (fun ~src:_ msg -> got1 := wid msg :: !got1);
  List.iter
    (fun (g, id) -> Shard.Mux.send mux ~group:g ~src:"a" ~dst:"b" (reply_msg id))
    [ (0, 1); (1, 2); (0, 3); (1, 4) ];
  Sim.Engine.run_for engine (10.0 *. ms);
  (* one link, one window: all four frames ride one packet, FIFO per group *)
  Alcotest.(check int) "packets" 1 (Shard.Mux.packets_sent mux);
  Alcotest.(check int) "frames" 4 (Shard.Mux.frames_sent mux);
  Alcotest.(check (list int)) "group 0 order" [ 1; 3 ] (List.rev !got0);
  Alcotest.(check (list int)) "group 1 order" [ 2; 4 ] (List.rev !got1);
  let expected_bytes =
    Shard.Mux.packet_size
      (List.map
         (fun id -> { Shard.Mux.fr_group = 0; fr_payload = reply_msg id })
         [ 1; 2; 3; 4 ])
  in
  Alcotest.(check int) "framing bytes" expected_bytes (Shard.Mux.bytes_sent mux)

let test_mux_window_separates_packets () =
  let engine, mux = make_mux ~window:(50.0 *. us) () in
  Shard.Mux.register mux ~group:0 "b" (fun ~src:_ _ -> ());
  Shard.Mux.send mux ~group:0 ~src:"a" ~dst:"b" (reply_msg 1);
  Sim.Engine.run_for engine ms;
  (* past the window: the next frame starts a fresh packet *)
  Shard.Mux.send mux ~group:0 ~src:"a" ~dst:"b" (reply_msg 2);
  Sim.Engine.run_for engine ms;
  Alcotest.(check int) "two windows, two packets" 2 (Shard.Mux.packets_sent mux)

let test_mux_carried_recently_excludes_own_group () =
  let engine, mux = make_mux () in
  Shard.Mux.send mux ~group:0 ~src:"a" ~dst:"b" (reply_msg 1);
  Shard.Mux.send mux ~group:1 ~src:"a" ~dst:"b" (reply_msg 2);
  Shard.Mux.send mux ~group:2 ~src:"c" ~dst:"b" (reply_msg 3);
  let carried g ~src = Shard.Mux.carried_recently mux ~group:g ~src ~dst:"b" ~within:ms in
  (* a->b carries groups 0 and 1: each sees the other, group 9 sees both *)
  Alcotest.(check bool) "g0 carried by g1" true (carried 0 ~src:"a");
  Alcotest.(check bool) "g9 carried" true (carried 9 ~src:"a");
  (* c->b carries only group 2's own frames: nothing to piggyback on *)
  Alcotest.(check bool) "own frames don't carry" false (carried 2 ~src:"c");
  Alcotest.(check bool) "other group on c->b" true (carried 0 ~src:"c");
  ignore (Sim.Engine.run_for engine (2.0 *. ms));
  Alcotest.(check bool) "recency horizon expires" false (carried 0 ~src:"a")

(* ----- the assembled deployment ----- *)

(* One primary-capable MySQL voter per region: leader spread is visible
   and every group still elects under region faults. *)
let three_region_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.mysql "mysql3" "r3";
  ]

(* Route one write through the router to the owning group's discovered
   primary (discovery supersedes a stale isolated leader once the new
   one publishes), waiting out any in-flight failover.  Rejections and
   timeouts both retry: a retried insert of the same key/value is
   content-idempotent, so duplicates cannot skew engine comparisons. *)
let multi_write ?(timeout = 20.0 *. s) ?(attempts = 6) multi ~table ~key ~value =
  let g = Shard.Router.group_of (Shard.Multi.router multi) ~table ~key in
  let c = Shard.Multi.cluster multi g in
  let rs = Shard.Multi.replicaset_of_group g in
  let discovered () =
    match
      Myraft.Service_discovery.primary_of (Shard.Multi.discovery multi) ~replicaset:rs
    with
    | Some id when not (Myraft.Cluster.is_crashed c id) -> Myraft.Cluster.server c id
    | _ -> None
  in
  let rec go n =
    if n = 0 then Error (g, "retries exhausted")
    else begin
      ignore (Shard.Multi.run_until multi ~timeout (fun () -> discovered () <> None));
      match discovered () with
      | None -> Error (g, "no discovered primary")
      | Some server ->
        let result = ref None in
        Myraft.Server.submit_write server ~table
          ~ops:[ Binlog.Event.Insert { key; value } ]
          ~reply:(fun outcome -> result := Some outcome);
        ignore
          (Shard.Multi.run_until multi ~step:ms ~timeout (fun () -> !result <> None));
        match !result with
        | Some (Myraft.Wire.Committed _) -> Ok g
        | Some (Myraft.Wire.Rejected _) | None -> go (n - 1)
    end
  in
  go attempts

let group_settled c =
  match Myraft.Cluster.raft_leader c with
  | None -> false
  | Some _ ->
    let ids = Myraft.Cluster.member_ids c in
    let indexes =
      List.filter_map
        (fun id -> Option.map Raft.Node.commit_index (Myraft.Cluster.raft_of c id))
        ids
    in
    (match indexes with
    | i :: rest ->
      List.for_all (fun j -> j = i) rest
      && List.for_all
           (fun srv -> Myraft.Server.applied_through srv >= i)
           (Myraft.Cluster.servers c)
    | [] -> false)

let settle multi =
  Alcotest.(check bool)
    "all groups settle" true
    (Shard.Multi.run_until multi ~timeout:(60.0 *. s) (fun () ->
         List.for_all group_settled (Shard.Multi.clusters multi)))

let test_multi_bootstrap_spreads_leaders () =
  let multi =
    Shard.Multi.create ~seed:31 ~members:(three_region_members ()) ~groups:4 ()
  in
  Shard.Multi.bootstrap multi;
  let leaders = List.filter_map snd (Shard.Multi.leader_placement multi) in
  Alcotest.(check int) "every group has a leader" 4 (List.length leaders);
  let distinct = List.sort_uniq compare leaders in
  Alcotest.(check int) "leaders spread over all three nodes" 3 (List.length distinct)

let test_multi_routed_traffic_reaches_every_shard () =
  let multi =
    Shard.Multi.create ~seed:32 ~members:(three_region_members ()) ~groups:4 ()
  in
  Shard.Multi.bootstrap multi;
  let backend = Shard.Multi.backend multi in
  let gen =
    Workload.Generator.create ~backend ~client_id:"client1" ~region:"r1"
      ~tables:[ "t0"; "t1" ] ~key_space:500 ()
  in
  Workload.Generator.start_closed_loop gen ~threads:8;
  Shard.Multi.run_for multi (2.0 *. s);
  Workload.Generator.stop gen;
  Shard.Multi.run_for multi s;
  let stats = Workload.Generator.stats gen in
  if stats.Workload.Generator.committed < 100 then
    Alcotest.failf "only %d commits through the routed backend"
      stats.Workload.Generator.committed;
  List.iter
    (fun c ->
      let committed =
        match Myraft.Cluster.raft_leader c with
        | Some id -> (
          match Myraft.Cluster.raft_of c id with
          | Some r -> Raft.Node.commit_index r
          | None -> 0)
        | None -> 0
      in
      if committed = 0 then
        Alcotest.failf "%s committed nothing — routing starved it"
          (Myraft.Cluster.replicaset_name c))
    (Shard.Multi.clusters multi);
  (* coalescing really happened: more frames than packets on the wire *)
  let mux = Shard.Multi.mux multi in
  if Shard.Mux.frames_sent mux <= Shard.Mux.packets_sent mux then
    Alcotest.failf "no coalescing under load (%d frames / %d packets)"
      (Shard.Mux.frames_sent mux) (Shard.Mux.packets_sent mux);
  let snap = Shard.Multi.metrics_snapshot multi in
  Alcotest.(check bool) "shard.mux.packets exported" true
    (Obs.Metrics.counter_of snap "shard.mux.packets" > 0);
  Alcotest.(check (option (float 0.01))) "shard.groups gauge" (Some 4.0)
    (Obs.Metrics.gauge_of snap "shard.groups")

let test_multi_idle_heartbeats_coalesce () =
  let multi =
    Shard.Multi.create ~seed:33 ~members:(three_region_members ()) ~groups:4 ()
  in
  Shard.Multi.bootstrap multi;
  let before = Shard.Multi.leader_placement multi in
  Shard.Multi.run_for multi (20.0 *. s);
  let after = Shard.Multi.leader_placement multi in
  Alcotest.(check bool) "no leader moved while idle" true (before = after);
  let snap = Shard.Multi.metrics_snapshot multi in
  let suppressed = Obs.Metrics.counter_of snap "raft.heartbeats_suppressed" in
  if suppressed = 0 then
    Alcotest.fail "idle co-located leaders never suppressed a heartbeat";
  if Obs.Metrics.counter_of snap "raft.transport_liveness_resets" = 0 then
    Alcotest.fail "followers never took liveness from a carried frame"

let test_single_group_never_suppresses () =
  let multi =
    Shard.Multi.create ~seed:34 ~members:(three_region_members ()) ~groups:1 ()
  in
  Shard.Multi.bootstrap multi;
  Shard.Multi.run_for multi (20.0 *. s);
  let snap = Shard.Multi.metrics_snapshot multi in
  Alcotest.(check int) "lone group keeps beating" 0
    (Obs.Metrics.counter_of snap "raft.heartbeats_suppressed");
  (* and its leader survived the idle stretch: liveness was never starved *)
  Alcotest.(check int) "leader stable" 1
    (List.length (List.filter_map snd (Shard.Multi.leader_placement multi)))

let test_multi_rebalance_respreads_leaders () =
  let multi =
    Shard.Multi.create ~seed:35 ~members:(three_region_members ()) ~groups:4 ()
  in
  Shard.Multi.bootstrap multi;
  (* pile every leader onto mysql1, then ask the balancer to undo it *)
  List.iteri
    (fun g c ->
      if Myraft.Cluster.raft_leader c <> Some "mysql1" then begin
        (match Myraft.Cluster.transfer_leadership c ~target:"mysql1" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "transfer of shard%d: %s" g e);
        Alcotest.(check bool)
          (Printf.sprintf "shard%d moved to mysql1" g)
          true
          (Shard.Multi.run_until multi ~timeout:(30.0 *. s) (fun () ->
               Myraft.Cluster.raft_leader c = Some "mysql1"))
      end)
    (Shard.Multi.clusters multi);
  let plan, errors = Shard.Multi.rebalance_leaders multi in
  Alcotest.(check (list (pair int string))) "no transfer errors" [] errors;
  Alcotest.(check bool) "balancer saw the pile-up" false plan.Control.Rebalance.balanced;
  Alcotest.(check bool) "leaders respread" true
    (Shard.Multi.run_until multi ~timeout:(60.0 *. s) (fun () ->
         let leaders = List.filter_map snd (Shard.Multi.leader_placement multi) in
         List.length leaders = 4 && List.length (List.sort_uniq compare leaders) = 3))

(* Region majorities must survive a single-node crash for FlexiRaft
   elections, so this one uses the logtailer-padded chaos-style ring. *)
let witnessed_members () =
  List.concat_map
    (fun i ->
      [
        Myraft.Cluster.mysql (Printf.sprintf "mysql%d" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%da" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%db" i) (Printf.sprintf "r%d" i);
      ])
    [ 1; 2; 3 ]

let test_multi_physical_crash_fails_over_all_groups () =
  let multi =
    Shard.Multi.create ~seed:36 ~members:(witnessed_members ()) ~groups:4 ()
  in
  Shard.Multi.bootstrap multi;
  Shard.Multi.crash_node multi "mysql1";
  Alcotest.(check bool) "every group re-elects off mysql1" true
    (Shard.Multi.run_until multi ~timeout:(60.0 *. s) (fun () ->
         List.for_all
           (fun c ->
             match Myraft.Cluster.raft_leader c with
             | Some l -> l <> "mysql1"
             | None -> false)
           (Shard.Multi.clusters multi)));
  Shard.Multi.restart_node multi "mysql1";
  settle multi;
  (* writes land in every shard after the round trip *)
  for i = 0 to 15 do
    match
      multi_write multi ~table:"t0" ~key:(Printf.sprintf "post-%d" i) ~value:"v"
    with
    | Ok _ -> ()
    | Error (g, e) -> Alcotest.failf "write %d (shard %d) failed: %s" i g e
  done

(* ----- observational equivalence (qcheck) ----- *)

type eq_fault = No_fault | Crash_follower | Isolate_node

let eq_fault_name = function
  | No_fault -> "none"
  | Crash_follower -> "crash"
  | Isolate_node -> "isolate"

let eq_arb =
  let gen =
    QCheck.Gen.(
      triple (0 -- 1000)
        (oneofl [ No_fault; Crash_follower; Isolate_node ])
        (list_size (10 -- 24) (pair (0 -- 1) (0 -- 49))))
  in
  QCheck.make
    ~print:(fun (seed, fault, ops) ->
      Printf.sprintf "seed=%d fault=%s ops=[%s]" seed (eq_fault_name fault)
        (String.concat ";"
           (List.map (fun (t, k) -> Printf.sprintf "t%d/row-%d" t k) ops)))
    gen

(* M-shard execution with router + mux must be observationally equivalent
   to M independent single-group clusters: identical per-shard engine
   content, even when a node (hosting some shard's leader) crashes or is
   isolated mid-stream.  Retried writes are content-idempotent, so
   reject-and-retry during failover cannot skew the comparison. *)
let prop_sharded_equals_independent =
  QCheck.Test.make ~name:"M shards + mux ≡ M independent clusters" ~count:6 eq_arb
    (fun (seed, fault, raw_ops) ->
      let groups = 3 in
      let members = Myraft.Cluster.small_members () in
      let multi = Shard.Multi.create ~seed ~members ~groups () in
      Shard.Multi.bootstrap multi;
      (* distinct keys; the value encodes the op so content mismatches
         are attributable *)
      let ops =
        List.mapi
          (fun i (tbl, k) ->
            ( Printf.sprintf "t%d" tbl,
              Printf.sprintf "row-%d-%d" k i,
              Printf.sprintf "v%d" i ))
          raw_ops
      in
      let half = List.length ops / 2 in
      let routed = ref [] in
      List.iteri
        (fun i (table, key, value) ->
          if i = half then begin
            match fault with
            | No_fault -> ()
            | Crash_follower -> Shard.Multi.crash_node multi "mysql2"
            | Isolate_node -> Shard.Multi.isolate_node multi "mysql3"
          end;
          match multi_write multi ~table ~key ~value with
          | Ok g -> routed := (g, (table, key, value)) :: !routed
          | Error (g, e) ->
            Alcotest.failf "sharded write %s/%s (shard %d): %s" table key g e)
        ops;
      (match fault with
      | No_fault -> ()
      | Crash_follower -> Shard.Multi.restart_node multi "mysql2"
      | Isolate_node -> Shard.Multi.heal_node multi "mysql3");
      if
        not
          (Shard.Multi.run_until multi ~timeout:(60.0 *. s) (fun () ->
               List.for_all group_settled (Shard.Multi.clusters multi)))
      then Alcotest.fail "sharded deployment did not settle after heal";
      let routed = List.rev !routed in
      (* reference: one fault-free standalone cluster per shard, fed that
         shard's op subsequence in order *)
      List.iteri
        (fun g c ->
          let my_ops = List.filter_map (fun (g', op) -> if g' = g then Some op else None) routed in
          let reference =
            Myraft.Cluster.create ~seed:(seed + 7919) ~replicaset:"ref" ~members ()
          in
          Myraft.Cluster.bootstrap reference ~leader_id:"mysql1";
          List.iter
            (fun (table, key, value) ->
              Helpers.check_ok
                (Printf.sprintf "reference write %s/%s" table key)
                (Helpers.direct_write reference ~table ~key ~value))
            my_ops;
          ignore
            (Myraft.Cluster.run_until reference ~timeout:(30.0 *. s) (fun () ->
                 group_settled reference));
          let ref_sum =
            match Myraft.Cluster.primary reference with
            | Some srv -> Storage.Engine.checksum (Myraft.Server.storage srv)
            | None -> Alcotest.fail "reference lost its primary"
          in
          (* every member of the shard converged to the reference content *)
          List.iter
            (fun srv ->
              Alcotest.(check int32)
                (Printf.sprintf "shard%d engine ≡ independent cluster (%s)" g
                   (Myraft.Server.id srv))
                ref_sum
                (Storage.Engine.checksum (Myraft.Server.storage srv)))
            (Myraft.Cluster.servers c);
          (* each acked write lives in its shard and nowhere else *)
          List.iter
            (fun (table, key, value) ->
              List.iteri
                (fun g' c' ->
                  match Myraft.Cluster.primary c' with
                  | None -> ()
                  | Some srv ->
                    let got =
                      Storage.Engine.get (Myraft.Server.storage srv) ~table ~key
                    in
                    if g' = g then
                      Alcotest.(check (option string))
                        (Printf.sprintf "%s/%s in shard%d" table key g)
                        (Some value) got
                    else
                      Alcotest.(check (option string))
                        (Printf.sprintf "%s/%s absent from shard%d" table key g')
                        None got)
                (Shard.Multi.clusters multi))
            my_ops)
        (Shard.Multi.clusters multi);
      true)

(* Satellite of the logless-reconfig work: the router's cached leader
   for a group must be dropped the moment a config change removes the
   cached node from that group's membership — eagerly, via the
   config-change tap, not merely after a client request bounces. *)
let test_multi_config_change_invalidates_router () =
  let multi =
    Shard.Multi.create ~seed:36 ~members:(three_region_members ()) ~groups:2 ()
  in
  Shard.Multi.bootstrap multi;
  let c0 = Shard.Multi.cluster multi 0 in
  let leader () =
    match Myraft.Cluster.raft_leader c0 with
    | Some id -> Option.get (Myraft.Cluster.raft_of c0 id)
    | None -> Alcotest.fail "group 0 lost its leader"
  in
  (* join a learner, then point group 0's route cache at it — the stale
     route a client would hold after a leadership-era membership swap *)
  Myraft.Cluster.add_server c0 (Myraft.Cluster.logtailer "extra" "r1");
  (match
     Raft.Node.add_member (leader ())
       { Raft.Types.id = "extra"; region = "r1"; voter = false; kind = Raft.Types.Logtailer }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add_member: %s" e);
  let settled () = not (Raft.Node.has_pending_config_change (leader ())) in
  Alcotest.(check bool) "join committed" true
    (Myraft.Cluster.run_until c0 ~timeout:(30.0 *. s) settled);
  let router = Shard.Multi.router multi in
  Shard.Router.note_leader router ~group:0 ~node:"extra";
  Alcotest.(check (option string)) "route cached" (Some "extra")
    (Shard.Router.cached_leader router ~group:0);
  (match Raft.Node.remove_member (leader ()) "extra" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "remove_member: %s" e);
  Alcotest.(check bool) "eviction committed" true
    (Myraft.Cluster.run_until c0 ~timeout:(30.0 *. s) (fun () ->
         settled ()
         && Shard.Router.cached_leader router ~group:0 = None));
  (* a config change that keeps the cached node a member leaves the
     cache alone (no gratuitous invalidation) *)
  let l = Myraft.Cluster.raft_leader c0 in
  Shard.Router.note_leader router ~group:0 ~node:(Option.get l);
  let bystander =
    List.find (fun id -> Some id <> l) [ "mysql1"; "mysql2"; "mysql3" ]
  in
  (match Raft.Node.demote_voter (leader ()) bystander with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "demote_voter: %s" e);
  Alcotest.(check bool) "demote committed" true
    (Myraft.Cluster.run_until c0 ~timeout:(30.0 *. s) settled);
  Alcotest.(check (option string)) "route kept for retained member" l
    (Shard.Router.cached_leader router ~group:0)

let suites =
  [
    ( "shard.router",
      [
        Alcotest.test_case "hash matches FNV-1a reference" `Quick test_router_hash_reference;
        Alcotest.test_case "hash is stable, in-range, spread" `Quick
          test_router_stability_and_spread;
        Alcotest.test_case "leader redirect cache" `Quick test_router_leader_cache;
      ] );
    ( "shard.mux",
      [
        Alcotest.test_case "frames coalesce and demux FIFO per group" `Quick
          test_mux_coalesces_and_demuxes;
        Alcotest.test_case "window boundary starts a new packet" `Quick
          test_mux_window_separates_packets;
        Alcotest.test_case "carrier check excludes own group" `Quick
          test_mux_carried_recently_excludes_own_group;
      ] );
    ( "shard.multi",
      [
        Alcotest.test_case "bootstrap spreads leaders over regions" `Quick
          test_multi_bootstrap_spreads_leaders;
        Alcotest.test_case "routed traffic reaches every shard" `Quick
          test_multi_routed_traffic_reaches_every_shard;
        Alcotest.test_case "idle heartbeats coalesce, liveness holds" `Quick
          test_multi_idle_heartbeats_coalesce;
        Alcotest.test_case "single group never suppresses" `Quick
          test_single_group_never_suppresses;
        Alcotest.test_case "rebalance respreads piled-up leaders" `Quick
          test_multi_rebalance_respreads_leaders;
        Alcotest.test_case "physical crash fails over every group" `Quick
          test_multi_physical_crash_fails_over_all_groups;
        Alcotest.test_case "config change invalidates the route cache" `Quick
          test_multi_config_change_invalidates_router;
      ] );
    ( "shard.equivalence",
      [ QCheck_alcotest.to_alcotest prop_sharded_equals_independent ] );
  ]
