(* Writeset-based parallel replica apply (MTS):

   - Binlog.Writeset stamping semantics (last writer, floor, bounded
     history reset, clear)
   - the parallel applier scheduler: speedup on independent transactions,
     log-order submission, low-water-mark applied_index over out-of-order
     completions, dependency stalls
   - truncation fencing across lanes (the satellite regression: an
     in-flight entry at/above the truncation point must not re-advance
     applied_index, and its server-side retry loop must see live()=false)
   - row-lock conflict retry against a real engine + pipeline with
     commit-order preservation
   - primary-side dependency stamping end to end through a cluster
   - qcheck: workers ∈ {2,4,8} converge to the same engine content as
     workers=1 under drop/partition/leader-crash chaos. *)

let ms = Helpers.ms
let s = Helpers.s

(* ----- writeset ----- *)

let test_writeset_stamps_last_writer () =
  let ws = Binlog.Writeset.create ~capacity:100 in
  Alcotest.(check int) "fresh key depends on floor" 0
    (Binlog.Writeset.stamp ws ~index:5 ~keys:[ ("t", "a") ]);
  Alcotest.(check int) "same key depends on last writer" 5
    (Binlog.Writeset.stamp ws ~index:9 ~keys:[ ("t", "a") ]);
  Alcotest.(check int) "multi-key takes the max" 9
    (Binlog.Writeset.stamp ws ~index:12 ~keys:[ ("t", "a"); ("t", "zzz") ]);
  Alcotest.(check int) "distinct key still floor" 0
    (Binlog.Writeset.stamp ws ~index:13 ~keys:[ ("t", "b") ]);
  Alcotest.(check int) "same key, different table is distinct" 0
    (Binlog.Writeset.stamp ws ~index:14 ~keys:[ ("u", "a") ])

let test_writeset_never_self_or_future () =
  let ws = Binlog.Writeset.create ~capacity:100 in
  ignore (Binlog.Writeset.stamp ws ~index:3 ~keys:[ ("t", "k") ]);
  (* restamping the same index (e.g. a retried flush) cannot yield
     last_committed >= index *)
  Alcotest.(check int) "self-dependency clamped" 2
    (Binlog.Writeset.stamp ws ~index:3 ~keys:[ ("t", "k") ])

let test_writeset_capacity_reset_raises_floor () =
  let ws = Binlog.Writeset.create ~capacity:4 in
  for i = 1 to 5 do
    ignore (Binlog.Writeset.stamp ws ~index:(10 + i) ~keys:[ ("t", string_of_int i) ])
  done;
  (* 5th distinct key overflowed the history: reset + floor raised *)
  Alcotest.(check int) "history reset" 0 (Binlog.Writeset.size ws);
  Alcotest.(check int) "floor raised to reset index" 15 (Binlog.Writeset.floor ws);
  Alcotest.(check int) "post-reset stamp is conservative" 15
    (Binlog.Writeset.stamp ws ~index:20 ~keys:[ ("t", "fresh") ])

let test_writeset_clear () =
  let ws = Binlog.Writeset.create ~capacity:10 in
  ignore (Binlog.Writeset.stamp ws ~index:7 ~keys:[ ("t", "k") ]);
  Binlog.Writeset.clear ws;
  Alcotest.(check int) "empty" 0 (Binlog.Writeset.size ws);
  Alcotest.(check int) "floor back to zero" 0 (Binlog.Writeset.floor ws);
  Alcotest.(check int) "old writer forgotten" 0
    (Binlog.Writeset.stamp ws ~index:9 ~keys:[ ("t", "k") ])

(* ----- applier scheduler (unit level) ----- *)

let txn_entry ?last_committed ~index ~key () =
  let e =
    Binlog.Entry.make
      ~opid:(Binlog.Opid.make ~term:1 ~index)
      (Binlog.Entry.Transaction
         {
           gtid = Binlog.Gtid.make ~source:"src" ~gno:index;
           events =
             [
               Binlog.Event.make
                 (Binlog.Event.Write_rows
                    { table = "t"; ops = [ Binlog.Event.Insert { key; value = "v" } ] });
             ];
         })
  in
  (match last_committed with
  | Some lc -> Binlog.Entry.set_deps e ~last_committed:lc ~sequence_number:index
  | None -> ());
  e

let params_with_workers workers =
  { Myraft.Params.default with Myraft.Params.applier_workers = workers }

(* Drain [n] independent transactions; returns the virtual time at which
   the last one finished executing (run_for always advances the clock to
   its full duration, so measure inside the process callback). *)
let drain_time ~workers ~n =
  let engine = Sim.Engine.create () in
  let finished_at = ref 0.0 in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers workers) ()
      ~process:(fun _ ~live:_ ~on_submitted ~on_done ->
        finished_at := Sim.Engine.now engine;
        on_done ~ok:true;
        on_submitted ())
  in
  let backlog =
    List.init n (fun i -> txn_entry ~last_committed:0 ~index:(i + 1) ~key:(string_of_int i) ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog;
  Sim.Engine.run_for engine (1_000.0 *. ms);
  Alcotest.(check int)
    (Printf.sprintf "workers=%d drained" workers)
    n (Myraft.Applier.applied_index a);
  !finished_at

let test_parallel_apply_overlaps_execution () =
  let serial = drain_time ~workers:1 ~n:32 in
  let parallel = drain_time ~workers:4 ~n:32 in
  (* only the 60 us execute phase overlaps, so 4 lanes should come close
     to a 4x drain; require a conservative 2.5x *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel drain >= 2.5x faster (serial %.0fus, parallel %.0fus)" serial
       parallel)
    true
    (parallel *. 2.5 <= serial)

let test_parallel_submission_stays_in_log_order () =
  let engine = Sim.Engine.create () in
  let submitted = ref [] in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers 8) ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        submitted := Binlog.Entry.index e :: !submitted;
        on_done ~ok:true;
        on_submitted ())
  in
  let backlog =
    List.init 20 (fun i -> txn_entry ~last_committed:0 ~index:(i + 1) ~key:(string_of_int i) ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog;
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check (list int))
    "pipeline submissions in log order despite 8 lanes"
    (List.init 20 (fun i -> i + 1))
    (List.rev !submitted)

let test_applied_index_is_low_water_mark () =
  let engine = Sim.Engine.create () in
  let held = ref None in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers 4) ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        if Binlog.Entry.index e = 1 then begin
          held := Some on_done;
          on_submitted () (* submitted, but engine commit pending *)
        end
        else begin
          on_done ~ok:true;
          on_submitted ()
        end)
  in
  let backlog =
    List.init 3 (fun i -> txn_entry ~last_committed:0 ~index:(i + 1) ~key:(string_of_int i) ())
  in
  Myraft.Applier.start a ~from_index:1 ~backlog;
  Sim.Engine.run_for engine (100.0 *. ms);
  (* 2 and 3 completed out of order; the mark must hold below the gap *)
  Alcotest.(check int) "gap at 1 pins the mark" 0 (Myraft.Applier.applied_index a);
  (match !held with Some k -> k ~ok:true | None -> Alcotest.fail "entry 1 never processed");
  Alcotest.(check int) "mark jumps over the drained gap" 3 (Myraft.Applier.applied_index a)

let test_dependent_txn_waits_for_mark () =
  let engine = Sim.Engine.create () in
  let processed = ref [] in
  let held = ref None in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers 4) ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        processed := Binlog.Entry.index e :: !processed;
        if Binlog.Entry.index e = 1 then begin
          held := Some on_done;
          on_submitted ()
        end
        else begin
          on_done ~ok:true;
          on_submitted ()
        end)
  in
  (* 2 conflicts with 1 (last_committed = 1): it may not even start
     executing until 1 is engine-committed *)
  let backlog =
    [ txn_entry ~last_committed:0 ~index:1 ~key:"k" (); txn_entry ~last_committed:1 ~index:2 ~key:"k" () ]
  in
  Myraft.Applier.start a ~from_index:1 ~backlog;
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check (list int)) "dependent txn held back" [ 1 ] (List.rev !processed);
  Alcotest.(check bool) "stall counted" true (Myraft.Applier.dep_stalls a >= 1);
  (match !held with Some k -> k ~ok:true | None -> Alcotest.fail "entry 1 never processed");
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check (list int)) "released after commit" [ 1; 2 ] (List.rev !processed);
  Alcotest.(check int) "both applied" 2 (Myraft.Applier.applied_index a)

(* ----- truncation fencing (satellite regression) ----- *)

let test_truncation_fences_inflight_entry () =
  let engine = Sim.Engine.create () in
  let held = ref None in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers 4) ()
      ~process:(fun e ~live ~on_submitted ~on_done ->
        if Binlog.Entry.index e = 2 && !held = None then
          (* entry 2 stuck in its prepare retry loop: nothing staged yet *)
          held := Some (live, on_submitted, on_done)
        else begin
          on_done ~ok:true;
          on_submitted ()
        end)
  in
  Myraft.Applier.start a ~from_index:1
    ~backlog:[ txn_entry ~last_committed:0 ~index:1 ~key:"a" (); txn_entry ~last_committed:0 ~index:2 ~key:"b" () ];
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check int) "entry 1 applied" 1 (Myraft.Applier.applied_index a);
  let live, on_submitted, on_done =
    match !held with Some x -> x | None -> Alcotest.fail "entry 2 never reached process"
  in
  Alcotest.(check bool) "in-flight entry live before truncation" true (live ());
  (* Raft truncates entry 2 away (leader change rewound the log). *)
  Myraft.Applier.handle_truncation a ~from_index:2;
  Alcotest.(check bool) "retry loop fenced" false (live ());
  (* The regression: the zombie callbacks fire anyway — they must not
     re-advance applied_index past the rewound cursor. *)
  on_done ~ok:true;
  on_submitted ();
  Alcotest.(check int) "zombie completion ignored" 1 (Myraft.Applier.applied_index a);
  (* the replacement entry stream applies normally *)
  Myraft.Applier.signal a
    [ txn_entry ~last_committed:0 ~index:2 ~key:"b2" (); txn_entry ~last_committed:0 ~index:3 ~key:"c" () ];
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check int) "replacement stream applied" 3 (Myraft.Applier.applied_index a)

let test_truncation_keeps_submitted_entries_below_point () =
  let engine = Sim.Engine.create () in
  let held = ref [] in
  let a =
    Myraft.Applier.create ~engine ~params:(params_with_workers 4) ()
      ~process:(fun e ~live:_ ~on_submitted ~on_done ->
        (* everything submits instantly but engine commit is pending *)
        held := (Binlog.Entry.index e, on_done) :: !held;
        on_submitted ())
  in
  Myraft.Applier.start a ~from_index:1
    ~backlog:
      [
        txn_entry ~last_committed:0 ~index:1 ~key:"a" ();
        txn_entry ~last_committed:0 ~index:2 ~key:"b" ();
        txn_entry ~last_committed:0 ~index:3 ~key:"c" ();
      ];
  Sim.Engine.run_for engine (100.0 *. ms);
  Alcotest.(check int) "all three in the pipeline" 3 (List.length !held);
  (* truncate 3 away: 1 and 2 are already submitted below the point and
     their commits are real *)
  Myraft.Applier.handle_truncation a ~from_index:3;
  List.iter (fun (_, k) -> k ~ok:true) (List.rev !held);
  Alcotest.(check int) "submitted entries below the point still count" 2
    (Myraft.Applier.applied_index a)

(* ----- row-lock conflict retry against a real engine + pipeline ----- *)

(* A miniature of Server.applier_process: prepare with retry-on-conflict,
   then the replica commit pipeline.  Entry 2 writes the same row as
   entry 1 but carries a permissive interval (a cross-epoch stamp), so it
   executes concurrently and its prepare must spin on the row lock until
   entry 1's engine commit releases it — and commit order must hold. *)
let test_lock_conflict_retries_and_preserves_order () =
  let engine = Sim.Engine.create () in
  let storage = Storage.Engine.create () in
  let params = params_with_workers 4 in
  let pipeline = Myraft.Pipeline.create ~engine ~params ~is_primary_path:false () in
  let conflicts = ref 0 in
  let process entry ~live ~on_submitted ~on_done =
    match Binlog.Entry.payload entry with
    | Binlog.Entry.Transaction { gtid; events } ->
      let writes =
        List.concat_map
          (fun ev ->
            match Binlog.Event.body ev with
            | Binlog.Event.Write_rows { table; ops } ->
              List.map (fun op -> (table, op)) ops
            | _ -> [])
          events
      in
      let rec try_prepare () =
        if not (live ()) then ()
        else
          match Storage.Engine.prepare storage ~gtid ~writes with
          | () ->
            Myraft.Pipeline.submit pipeline
              {
                Myraft.Pipeline.label = Binlog.Gtid.to_string gtid;
                flush = (fun () -> Ok (Binlog.Entry.index entry));
                finish =
                  (fun ~ok ->
                    if ok then begin
                      Storage.Engine.commit_prepared storage ~gtid
                        ~opid:(Binlog.Entry.opid entry);
                      on_done ~ok:true
                    end
                    else on_done ~ok:false);
              };
            on_submitted ()
          | exception Storage.Engine.Lock_conflict _ ->
            incr conflicts;
            ignore (Sim.Engine.schedule engine ~delay:(50.0 *. Sim.Engine.us) try_prepare)
      in
      try_prepare ()
    | _ ->
      on_done ~ok:true;
      on_submitted ()
  in
  let a = Myraft.Applier.create ~engine ~params ~process () in
  Myraft.Applier.start a ~from_index:1
    ~backlog:
      [
        txn_entry ~last_committed:0 ~index:1 ~key:"same-row" ();
        txn_entry ~last_committed:0 ~index:2 ~key:"same-row" ();
      ];
  (* consensus marker withheld: entry 1 sits prepared in the pipeline
     holding the row lock while entry 2 executes and tries to prepare *)
  Sim.Engine.run_for engine (10.0 *. ms);
  Alcotest.(check bool) "conflict retries happened" true (!conflicts >= 1);
  Alcotest.(check int) "nothing committed yet" 0 (Storage.Engine.committed_count storage);
  Myraft.Pipeline.notify_commit_index pipeline 2;
  Sim.Engine.run_for engine (50.0 *. ms);
  Alcotest.(check int) "both committed" 2 (Storage.Engine.committed_count storage);
  Alcotest.(check int) "applied through both" 2 (Myraft.Applier.applied_index a);
  (* engine commit order matches log order *)
  Alcotest.(check int) "last commit is entry 2" 2
    (Binlog.Opid.index (Storage.Engine.last_committed_opid storage))

(* ----- primary-side stamping, end to end ----- *)

let test_primary_stamps_dependency_intervals () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  Helpers.check_ok "w1" (Helpers.direct_write cluster ~key:"hot" ~value:"a");
  Helpers.check_ok "w2" (Helpers.direct_write cluster ~key:"hot" ~value:"b");
  Helpers.check_ok "w3" (Helpers.direct_write cluster ~key:"cold" ~value:"c");
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let log = Myraft.Server.log primary in
  let deps_at i =
    match Binlog.Log_store.entry_at log i with
    | Some e -> Binlog.Entry.deps e
    | None -> Alcotest.failf "no entry at %d" i
  in
  (* index 1 is the term-opening noop; writes land at 2, 3, 4 *)
  Alcotest.(check bool) "noop carries no interval" true (deps_at 1 = None);
  (match deps_at 2 with
  | Some d ->
    Alcotest.(check int) "first writer of 'hot' depends on floor" 0
      d.Binlog.Entry.last_committed;
    Alcotest.(check int) "sequence_number is the log index" 2
      d.Binlog.Entry.sequence_number
  | None -> Alcotest.fail "write 1 not stamped");
  (match deps_at 3 with
  | Some d ->
    Alcotest.(check int) "second writer of 'hot' depends on the first" 2
      d.Binlog.Entry.last_committed
  | None -> Alcotest.fail "write 2 not stamped");
  (match deps_at 4 with
  | Some d ->
    Alcotest.(check int) "'cold' is independent" 0 d.Binlog.Entry.last_committed
  | None -> Alcotest.fail "write 3 not stamped");
  (* the stamps replicated through Raft: a replica's relay log agrees *)
  let replica_log = Myraft.Server.log (Option.get (Myraft.Cluster.server cluster "mysql2")) in
  match Binlog.Log_store.entry_at replica_log 3 with
  | Some e ->
    Alcotest.(check bool) "replica sees the interval" true
      (Binlog.Entry.deps e = deps_at 3)
  | None -> Alcotest.fail "replica missing entry 3"

(* ----- qcheck: chaos equivalence across worker counts ----- *)

let spec_with faults =
  match Chaos.Schedule.with_faults Chaos.Schedule.default faults with
  | Ok s -> s
  | Error e -> failwith e

(* One seeded run: a deterministic hot-key workload (value is a function
   of the key, so any commit interleaving converges to the same content)
   under drop/partition/leader-crash chaos; retry each write until it
   commits; heal and settle.  Returns (all_committed, settled,
   per-server content checksums, per-server applied_through =
   commit_index). *)
let run_apply_chaos ~workers ~seed ~writes =
  let params = { Myraft.Params.default with Myraft.Params.applier_workers = workers } in
  let cluster =
    Myraft.Cluster.create ~seed ~params ~replicaset:"apply-chaos"
      ~members:(Chaos.Nemesis.chaos_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"my1";
  let nemesis =
    Chaos.Nemesis.create ~engine:(Myraft.Cluster.engine cluster)
      ~trace:(Myraft.Cluster.trace cluster)
      ~rng:(Sim.Rng.of_int (seed lxor 0x61707079))
      ~spec:(spec_with [ "drop"; "partition"; "leader-crash" ])
      ~ops:(Chaos.Nemesis.ops_of_cluster cluster)
  in
  let write_one i =
    Chaos.Nemesis.step nemesis;
    let key = Printf.sprintf "hot-%d" (i mod 6) in
    let rec go attempts =
      if attempts > 60 then false
      else
        match Helpers.direct_write cluster ~key ~value:("v-" ^ key) with
        | Ok () -> true
        | Error _ ->
          Myraft.Cluster.run_for cluster (200.0 *. ms);
          go (attempts + 1)
    in
    go 0
  in
  let all_committed =
    List.for_all (fun i -> write_one i) (List.init writes (fun i -> i))
  in
  Chaos.Nemesis.heal_now nemesis;
  let mysqls = [ "my1"; "my2"; "my3" ] in
  let settled =
    Myraft.Cluster.run_until cluster ~timeout:(120.0 *. s) (fun () ->
        match Myraft.Cluster.raft_leader cluster with
        | None -> false
        | Some _ -> (
          let indexes =
            List.filter_map
              (fun id ->
                Option.map Raft.Node.commit_index (Myraft.Cluster.raft_of cluster id))
              (Myraft.Cluster.member_ids cluster)
          in
          match indexes with
          | [] -> false
          | ci :: rest ->
            List.for_all (fun x -> x = ci) rest
            && List.for_all
                 (fun id ->
                   match Myraft.Cluster.server cluster id with
                   | Some srv -> Myraft.Server.applied_through srv >= ci
                   | None -> false)
                 mysqls))
  in
  let srv id = Option.get (Myraft.Cluster.server cluster id) in
  let checksums =
    List.map (fun id -> Storage.Engine.checksum (Myraft.Server.storage (srv id))) mysqls
  in
  let applied = List.map (fun id -> Myraft.Server.applied_through (srv id)) mysqls in
  (all_committed, settled, checksums, applied)

let apply_chaos_case_gen =
  QCheck.Gen.(
    let* seed = 1 -- 10_000 in
    let* workers = oneofl [ 2; 4; 8 ] in
    let* writes = 18 -- 30 in
    return (seed, workers, writes))

let apply_chaos_arb =
  QCheck.make
    ~print:(fun (seed, workers, writes) ->
      Printf.sprintf "seed=%d workers=%d writes=%d" seed workers writes)
    apply_chaos_case_gen

(* Equivalence is on engine CONTENT, which the deterministic workload
   makes identical across runs.  applied_through / checksum_at are NOT
   compared across runs: leader crashes land at different instants in
   the two runs, so log indexes (term no-ops, retried writes) and the
   commit history legitimately differ.  Within a run, every server must
   agree on both.

   all_committed is NOT required unconditionally: some chaos schedules
   (e.g. a partition that isolates the routed primary for longer than
   the retry budget) legitimately block a write in BOTH runs — that is
   a property of the schedule, not an apply bug.  The claim is that the
   serial and parallel runs AGREE on whether every write committed, and
   converge to identical content either way; post-heal settling is
   still required unconditionally. *)
let prop_parallel_apply_chaos_equivalence =
  QCheck.Test.make ~name:"parallel apply == serial apply under chaos" ~count:3
    apply_chaos_arb (fun (seed, workers, writes) ->
      let all_p, settled_p, sums_p, applied_p = run_apply_chaos ~workers ~seed ~writes in
      let all_s, settled_s, sums_s, applied_s = run_apply_chaos ~workers:1 ~seed ~writes in
      all_p = all_s && settled_p && settled_s
      (* within-run convergence: every server has identical content and
         has applied through the same point *)
      && List.for_all (fun c -> c = List.hd sums_p) sums_p
      && List.for_all (fun c -> c = List.hd sums_s) sums_s
      && List.for_all (fun x -> x = List.hd applied_p) applied_p
      && List.for_all (fun x -> x = List.hd applied_s) applied_s
      (* cross-run: parallel apply converges to exactly the serial content *)
      && List.hd sums_p = List.hd sums_s)

(* Regression pin for the schedule that exposed the over-strict liveness
   conjunct: seed 9038 blocks one write past the retry budget in both
   runs, while equivalence (agreement + convergence) still holds. *)
let test_blocked_schedule_equivalence () =
  let all_p, settled_p, sums_p, applied_p = run_apply_chaos ~workers:8 ~seed:9038 ~writes:25 in
  let all_s, settled_s, sums_s, applied_s = run_apply_chaos ~workers:1 ~seed:9038 ~writes:25 in
  Alcotest.(check bool) "runs agree on commit outcome" true (all_p = all_s);
  Alcotest.(check bool) "both settle after heal" true (settled_p && settled_s);
  Alcotest.(check bool) "within-run convergence" true
    (List.for_all (fun c -> c = List.hd sums_p) sums_p
    && List.for_all (fun c -> c = List.hd sums_s) sums_s
    && List.for_all (fun x -> x = List.hd applied_p) applied_p
    && List.for_all (fun x -> x = List.hd applied_s) applied_s);
  Alcotest.(check bool) "cross-run content equality" true
    (List.hd sums_p = List.hd sums_s)

let suites =
  [
    ( "apply.blocked-schedule",
      [
        Alcotest.test_case "seed 9038: blocked write, equivalence holds" `Quick
          test_blocked_schedule_equivalence;
      ] );
    ( "apply.writeset",
      [
        Alcotest.test_case "stamps last writer" `Quick test_writeset_stamps_last_writer;
        Alcotest.test_case "never self or future" `Quick test_writeset_never_self_or_future;
        Alcotest.test_case "capacity reset raises floor" `Quick
          test_writeset_capacity_reset_raises_floor;
        Alcotest.test_case "clear forgets history" `Quick test_writeset_clear;
      ] );
    ( "apply.scheduler",
      [
        Alcotest.test_case "parallel lanes overlap execution" `Quick
          test_parallel_apply_overlaps_execution;
        Alcotest.test_case "submission stays in log order" `Quick
          test_parallel_submission_stays_in_log_order;
        Alcotest.test_case "applied_index is a low-water-mark" `Quick
          test_applied_index_is_low_water_mark;
        Alcotest.test_case "dependent txn waits for the mark" `Quick
          test_dependent_txn_waits_for_mark;
        Alcotest.test_case "lock conflict retries, order preserved" `Quick
          test_lock_conflict_retries_and_preserves_order;
      ] );
    ( "apply.truncation",
      [
        Alcotest.test_case "fences in-flight entries (regression)" `Quick
          test_truncation_fences_inflight_entry;
        Alcotest.test_case "keeps submitted entries below the point" `Quick
          test_truncation_keeps_submitted_entries_below_point;
      ] );
    ( "apply.stamping",
      [
        Alcotest.test_case "primary stamps dependency intervals" `Quick
          test_primary_stamps_dependency_intervals;
      ] );
    ( "apply.equivalence",
      [ QCheck_alcotest.to_alcotest prop_parallel_apply_chaos_equivalence ] );
  ]
