(* Table 2 reproduction (§6.2): promotion and failover downtime
   distributions (pct99 / pct95 / median / avg, ms) for MyRaft vs the
   semi-sync prior setup.

   Downtime is measured exactly as in production: a probe client keeps
   attempting small writes through service discovery; the downtime of an
   incident is the largest gap between consecutive successful commits
   around it.  Every trial runs a fresh replicaset with its own seed. *)

open Common

(* a trimmed multi-region FlexiRaft ring: 3 regions x (mysql + 2
   logtailers) — big enough for region dynamics, small enough to run
   hundreds of trials *)
let trial_members () =
  List.concat_map
    (fun i ->
      [
        Myraft.Cluster.mysql (Printf.sprintf "mysql%d" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%da" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%db" i) (Printf.sprintf "r%d" i);
      ])
    [ 1; 2; 3 ]

(* ----- MyRaft trials ----- *)

let myraft_trial ~seed ~operation =
  let cluster =
    Myraft.Cluster.create ~seed ~replicaset:"rs-t2" ~members:(trial_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let incident_at = Myraft.Cluster.now cluster in
  (match operation with
  | `Failover -> Myraft.Cluster.crash cluster "mysql1"
  | `Promotion -> (
    match Myraft.Cluster.transfer_leadership cluster ~target:"mysql2" with
    | Ok () -> ()
    | Error e -> failwith ("transfer: " ^ e)));
  (* wait until a different primary serves writes again, then settle *)
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.run_for cluster (3.0 *. s);
  let end_at = Myraft.Cluster.now cluster in
  Myraft.Availability.stop probe;
  Myraft.Availability.max_downtime probe ~start_time:incident_at ~end_time:end_at

(* ----- prior setup trials ----- *)

let semisync_trial ~seed ~operation =
  let cluster =
    Semisync.Cluster.create ~seed ~replicaset:"rs-t2" ~members:(trial_members ()) ()
  in
  Semisync.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let probe =
    Semisync.Cluster.start_probe cluster ~client_id:"probe"
      ~probe_interval:(20.0 *. ms)
  in
  Semisync.Cluster.run_for cluster (2.0 *. s);
  let incident_at = Semisync.Cluster.now cluster in
  let orch = Semisync.Cluster.orchestrator cluster in
  (match operation with
  | `Failover -> Semisync.Cluster.crash cluster "mysql1"
  | `Promotion -> (
    match
      Semisync.Orchestrator.graceful_promotion orch ~target:"mysql2" ~on_done:(fun () -> ())
    with
    | Ok () -> ()
    | Error e -> failwith ("promotion: " ^ e)));
  let settled () =
    match Semisync.Cluster.primary cluster with
    | Some srv -> Semisync.Server.id srv = "mysql2" || Semisync.Server.id srv = "mysql3"
    | None -> false
  in
  ignore (Semisync.Cluster.run_until cluster ~step:(100.0 *. ms) ~timeout:(400.0 *. s) settled);
  Semisync.Cluster.run_for cluster (5.0 *. s);
  let end_at = Semisync.Cluster.now cluster in
  Sim.Probe.stop probe;
  Sim.Probe.max_downtime probe ~start_time:incident_at ~end_time:end_at

(* ----- the table ----- *)

let run_trials ~trials ~base_seed f =
  let h = Stats.Histogram.create () in
  for i = 1 to trials do
    Stats.Histogram.record h (f ~seed:(base_seed + i))
  done;
  h

let paper_rows =
  [
    ("Semi-Sync", "Failover", (180291.0, 98012.0, 55039.0, 59133.0));
    ("Semi-Sync", "Promotion", (1968.0, 1676.0, 897.0, 956.0));
    ("Raft", "Failover", (6632.0, 5030.0, 1887.0, 2389.0));
    ("Raft", "Promotion", (357.0, 322.0, 202.0, 218.0));
  ]

let run ?(failover_trials = 40) ?(promotion_trials = 60) () =
  header "Table 2 — MyRaft vs Semi-sync promotion/failover downtime (ms)";
  Printf.printf "Trials: %d failovers, %d promotions per stack; fresh ring per trial.\n%!"
    failover_trials promotion_trials;
  let ss_fail =
    run_trials ~trials:failover_trials ~base_seed:1000 (fun ~seed ->
        semisync_trial ~seed ~operation:`Failover)
  in
  let ss_promo =
    run_trials ~trials:promotion_trials ~base_seed:2000 (fun ~seed ->
        semisync_trial ~seed ~operation:`Promotion)
  in
  let raft_fail =
    run_trials ~trials:failover_trials ~base_seed:3000 (fun ~seed ->
        myraft_trial ~seed ~operation:`Failover)
  in
  let raft_promo =
    run_trials ~trials:promotion_trials ~base_seed:4000 (fun ~seed ->
        myraft_trial ~seed ~operation:`Promotion)
  in
  section "measured";
  Printf.printf "  %-10s %-10s %8s  %8s  %8s  %8s\n" "Mode" "Operation" "pct99" "pct95"
    "median" "avg";
  dist_row_ms ~label:("Semi-Sync", "Failover") ss_fail;
  dist_row_ms ~label:("Semi-Sync", "Promotion") ss_promo;
  dist_row_ms ~label:("Raft", "Failover") raft_fail;
  dist_row_ms ~label:("Raft", "Promotion") raft_promo;
  section "paper (Table 2)";
  List.iter
    (fun (mode, op, (p99, p95, med, avg)) ->
      Printf.printf "  %-10s %-10s pct99=%8.0f  pct95=%8.0f  median=%8.0f  avg=%8.0f (ms)\n"
        mode op p99 p95 med avg)
    paper_rows;
  section "bootstrap 95% confidence intervals for the averages (ms)";
  let rng = Sim.Rng.of_int 99 in
  List.iter
    (fun (label, h) ->
      let ci =
        Stats.Summary.mean_ci ~rng (Stats.Summary.of_histogram h)
      in
      Printf.printf "  %-22s %s\n" label (Stats.Summary.ci_to_string ~scale:ms ci))
    [
      ("Semi-Sync failover", ss_fail);
      ("Semi-Sync promotion", ss_promo);
      ("Raft failover", raft_fail);
      ("Raft promotion", raft_promo);
    ];
  section "headline ratios";
  let avg h = Stats.Histogram.mean h /. ms in
  paper_vs_measured ~label:"dead-primary failover improvement" ~paper:"24x"
    ~measured:(Printf.sprintf "%.1fx (%.0fms -> %.0fms)" (avg ss_fail /. avg raft_fail)
                 (avg ss_fail) (avg raft_fail));
  paper_vs_measured ~label:"manual promotion improvement" ~paper:"4x"
    ~measured:(Printf.sprintf "%.1fx (%.0fms -> %.0fms)" (avg ss_promo /. avg raft_promo)
                 (avg ss_promo) (avg raft_promo));
  (ss_fail, ss_promo, raft_fail, raft_promo)
