(* Figure 5 reproduction (§6.1): commit latency histograms and
   throughput for (a,b) the production-representative A/B test and (c,d)
   the sysbench OLTP write benchmark, MyRaft vs the semi-sync prior
   setup. *)

open Common

type ab_result = {
  label : string;
  latencies : Stats.Histogram.t;
  throughput : Stats.Timeseries.t;
  committed : int;
  rejected : int;
  timed_out : int;
}

let run_myraft_side ~seed ~costs ~configure_load ~duration =
  let cluster = myraft_ab_cluster ~seed ~costs in
  let backend = Workload.Backend.myraft cluster in
  let gen = configure_load backend in
  Myraft.Cluster.run_for cluster duration;
  Workload.Generator.stop gen;
  Myraft.Cluster.run_for cluster (2.0 *. s) (* drain *);
  let st = Workload.Generator.stats gen in
  {
    label = "MyRaft";
    latencies = st.Workload.Generator.latencies;
    throughput = st.Workload.Generator.throughput;
    committed = st.Workload.Generator.committed;
    rejected = st.Workload.Generator.rejected;
    timed_out = st.Workload.Generator.timed_out;
  }

let run_semisync_side ~seed ~costs ~configure_load ~duration =
  let cluster = semisync_ab_cluster ~seed ~costs in
  let backend = Workload.Backend.semisync cluster in
  let gen = configure_load backend in
  Semisync.Cluster.run_for cluster duration;
  Workload.Generator.stop gen;
  Semisync.Cluster.run_for cluster (2.0 *. s);
  let st = Workload.Generator.stats gen in
  {
    label = "Prior setup";
    latencies = st.Workload.Generator.latencies;
    throughput = st.Workload.Generator.throughput;
    committed = st.Workload.Generator.committed;
    rejected = st.Workload.Generator.rejected;
    timed_out = st.Workload.Generator.timed_out;
  }

let report_latency_figure ~figure ~paper_avg_myraft ~paper_avg_prior my ss =
  section (figure ^ ": commit latency histogram");
  Printf.printf "%s latency histogram:\n%s" my.label
    (Stats.Histogram.render ~buckets_n:16 my.latencies);
  Printf.printf "%s latency histogram:\n%s" ss.label
    (Stats.Histogram.render ~buckets_n:16 ss.latencies);
  dist_row ~label:my.label my.latencies;
  dist_row ~label:ss.label ss.latencies;
  let avg_my = Stats.Histogram.mean my.latencies in
  let avg_ss = Stats.Histogram.mean ss.latencies in
  let delta = (avg_my -. avg_ss) /. avg_ss *. 100.0 in
  paper_vs_measured ~label:(figure ^ " avg latency, MyRaft (us)") ~paper:paper_avg_myraft
    ~measured:(Printf.sprintf "%.1f" avg_my);
  paper_vs_measured ~label:(figure ^ " avg latency, prior setup (us)")
    ~paper:paper_avg_prior
    ~measured:(Printf.sprintf "%.1f" avg_ss);
  paper_vs_measured ~label:(figure ^ " prior-setup advantage")
    ~paper:(if figure = "Fig 5a" then "0.8%" else "1.9%")
    ~measured:(Printf.sprintf "%.1f%%" delta)

let report_throughput_figure ~figure my ss =
  section (figure ^ ": throughput over time (commits per second)");
  print_string
    (Stats.Timeseries.render_pair ~label_a:my.label my.throughput ~label_b:ss.label
       ss.throughput ~width:60);
  let rate_my = Stats.Timeseries.mean_rate_per_bucket my.throughput in
  let rate_ss = Stats.Timeseries.mean_rate_per_bucket ss.throughput in
  paper_vs_measured ~label:(figure ^ " throughput difference")
    ~paper:"no significant difference"
    ~measured:
      (Printf.sprintf "%.0f vs %.0f commits/s (%+.1f%%)" rate_my rate_ss
         ((rate_my -. rate_ss) /. rate_ss *. 100.0));
  (my.committed, ss.committed)

(* ----- Fig 5a/5b: production-representative A/B ----- *)

let production ?(duration = 60.0 *. s) ?(rate_per_s = 120.0) ?(seed = 31) () =
  header "Figures 5a/5b — production A/B: MyRaft vs semi-sync prior setup";
  Printf.printf
    "Topology: primary + 2 in-region logtailers, 5 follower regions (2 logtailers\n\
     each), 2 learners.  A MyShadow trace (%.0f writes/s, production-like sizes)\n\
     is recorded once and replayed IDENTICALLY on both stacks; clients ~10ms away.\n%!"
    rate_per_s;
  let costs = production_costs () in
  (* the A/B methodology of §5.1/§6.1: one recorded trace, two stacks *)
  let trace = Workload.Shadow.record ~seed ~rate_per_s ~duration () in
  Printf.printf "trace: %d operations, %d payload bytes.\n%!"
    (Workload.Shadow.length trace)
    (Workload.Shadow.total_bytes trace);
  let configure_load backend =
    Workload.Shadow.replay trace ~backend ~client_id:"prod-client" ~region:"clients"
  in
  let my = run_myraft_side ~seed ~costs ~configure_load ~duration in
  let ss = run_semisync_side ~seed ~costs ~configure_load ~duration in
  report_latency_figure ~figure:"Fig 5a" ~paper_avg_myraft:"15758.4"
    ~paper_avg_prior:"15626.8" my ss;
  ignore (report_throughput_figure ~figure:"Fig 5b" my ss);
  (my, ss)

(* ----- Fig 5c/5d: sysbench OLTP write ----- *)

let sysbench ?(duration = 30.0 *. s) ?(threads = 8) ?(seed = 37) () =
  header "Figures 5c/5d — sysbench OLTP write: MyRaft vs semi-sync prior setup";
  Printf.printf
    "Closed-loop sysbench clients colocated with the primary (no client RTT),\n\
     %d worker threads, much higher write rate than production.\n%!" threads;
  let costs = Myraft.Params.default in
  let configure_load backend =
    let gen =
      Workload.Generator.create ~backend ~client_id:"sysbench" ~region:"r1"
        ~client_latency:(5.0 *. us) ~value_mu:(log 180.0) ~value_sigma:0.25
        ~bucket_width:s ()
    in
    Workload.Generator.start_closed_loop gen ~threads;
    gen
  in
  let my = run_myraft_side ~seed ~costs ~configure_load ~duration in
  let ss = run_semisync_side ~seed ~costs ~configure_load ~duration in
  report_latency_figure ~figure:"Fig 5c" ~paper_avg_myraft:"826.4" ~paper_avg_prior:"811.2"
    my ss;
  ignore (report_throughput_figure ~figure:"Fig 5d" my ss);
  (my, ss)
