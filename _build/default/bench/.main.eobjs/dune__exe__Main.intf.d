bench/main.mli:
