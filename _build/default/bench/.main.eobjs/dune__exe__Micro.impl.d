bench/micro.ml: Analyze Bechamel Benchmark Binlog Common Hashtbl Instance List Measure Printf Raft Staged Stats String Test Time Toolkit
