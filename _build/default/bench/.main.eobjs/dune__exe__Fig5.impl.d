bench/fig5.ml: Common Myraft Printf Semisync Stats Workload
