bench/ablations.ml: Binlog Common List Myraft Option Printf Raft Sim Stats String Workload
