bench/main.ml: Ablations Array Common Fig5 List Micro Myraft Printf Sys Table2
