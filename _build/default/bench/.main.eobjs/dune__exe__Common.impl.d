bench/common.ml: List Myraft Printf Semisync Sim Stats
