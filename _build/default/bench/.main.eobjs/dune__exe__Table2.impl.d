bench/table2.ml: Common List Myraft Printf Semisync Sim Stats
