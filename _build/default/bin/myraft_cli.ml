(* myraft_cli — drive MyRaft scenarios from the command line.

     myraft_cli demo                # quickstart ring + writes
     myraft_cli failover --seed 3   # crash the primary, report downtime
     myraft_cli promote             # graceful transfer, report downtime
     myraft_cli status              # print a ring and its Table-1 roles *)

open Cmdliner

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let default_members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let make_cluster ~seed ~echo =
  let cluster =
    Myraft.Cluster.create ~seed ~echo_trace:echo ~replicaset:"cli"
      ~members:(default_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  cluster

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Echo the simulation trace.")

let with_load cluster f =
  let backend = Workload.Backend.myraft cluster in
  let gen =
    Workload.Generator.create ~backend ~client_id:"cli-load" ~region:"r1"
      ~client_latency:(200.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop gen ~rate_per_s:200.0;
  let result = f () in
  Workload.Generator.stop gen;
  Printf.printf "\nworkload: %s\n" (Workload.Generator.summary gen);
  result

let demo seed echo =
  let cluster = make_cluster ~seed ~echo in
  with_load cluster (fun () -> Myraft.Cluster.run_for cluster (5.0 *. s));
  Printf.printf "\nring after 5s of traffic:\n%s\n" (Myraft.Cluster.describe cluster)

let failover seed echo =
  let cluster = make_cluster ~seed ~echo in
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  with_load cluster (fun () ->
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let crash_at = Myraft.Cluster.now cluster in
      Printf.printf ">>> crashing mysql1\n%!";
      Myraft.Cluster.crash cluster "mysql1";
      ignore
        (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
             match Myraft.Cluster.primary cluster with
             | Some srv -> Myraft.Server.id srv <> "mysql1"
             | None -> false));
      Myraft.Cluster.run_for cluster (3.0 *. s);
      let downtime =
        Myraft.Availability.max_downtime probe ~start_time:crash_at
          ~end_time:(Myraft.Cluster.now cluster)
      in
      Printf.printf "\nmeasured failover downtime: %.0f ms\n" (downtime /. ms));
  Printf.printf "\n%s\n" (Myraft.Cluster.describe cluster)

let promote seed echo =
  let cluster = make_cluster ~seed ~echo in
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  with_load cluster (fun () ->
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let start_at = Myraft.Cluster.now cluster in
      Printf.printf ">>> transferring leadership to mysql2\n%!";
      (match Myraft.Cluster.transfer_leadership cluster ~target:"mysql2" with
      | Ok () -> ()
      | Error e -> failwith e);
      ignore
        (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
             match Myraft.Cluster.primary cluster with
             | Some srv -> Myraft.Server.id srv = "mysql2"
             | None -> false));
      Myraft.Cluster.run_for cluster (2.0 *. s);
      let downtime =
        Myraft.Availability.max_downtime probe ~start_time:start_at
          ~end_time:(Myraft.Cluster.now cluster)
      in
      Printf.printf "\nmeasured promotion downtime: %.0f ms\n" (downtime /. ms));
  Printf.printf "\n%s\n" (Myraft.Cluster.describe cluster)

let status seed echo =
  let cluster = make_cluster ~seed ~echo in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Printf.printf "%s\n\n%s" (Myraft.Cluster.describe cluster) (Myraft.Roles.render ())

(* A shadow-testing burst: repeated leader crashes under load with
   checksum consistency checks (§5.1), from the command line. *)
let chaos seed echo =
  let cluster = make_cluster ~seed ~echo in
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  with_load cluster (fun () ->
      let injector =
        Workload.Failure_injection.start cluster
          ~kind:Workload.Failure_injection.Crash_leader ~interval:(12.0 *. s)
          ~restart_after:(4.0 *. s)
      in
      Myraft.Cluster.run_for cluster (60.0 *. s);
      Workload.Failure_injection.stop injector;
      ignore
        (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
             Myraft.Cluster.primary cluster <> None));
      Myraft.Cluster.run_for cluster (10.0 *. s);
      Printf.printf "\ninjections: %d, probe successes: %d, failures: %d\n"
        (Workload.Failure_injection.injections injector)
        (Myraft.Availability.successes probe)
        (Myraft.Availability.failures probe);
      match Workload.Failure_injection.consistency_check cluster with
      | Ok n -> Printf.printf "consistency: all live engines identical at %d txns\n" n
      | Error e -> Printf.printf "CONSISTENCY FAILURE: %s\n" e);
  Printf.printf "\n%s\n" (Myraft.Cluster.describe cluster)

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ seed_arg $ trace_arg)

let () =
  let root =
    Cmd.group
      (Cmd.info "myraft_cli" ~version:"1.0"
         ~doc:"Drive MyRaft replicaset scenarios on the simulator")
      [
        cmd "demo" "Bring up a ring and run traffic." demo;
        cmd "failover" "Crash the primary and measure downtime." failover;
        cmd "promote" "Graceful leadership transfer with downtime." promote;
        cmd "status" "Show ring status and Table-1 roles." status;
        cmd "chaos" "60s of leader crashes under load with consistency checks." chaos;
      ]
  in
  exit (Cmd.eval root)
