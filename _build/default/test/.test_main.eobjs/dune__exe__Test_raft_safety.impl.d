test/test_raft_safety.ml: Alcotest Array Binlog Hashtbl Int32 List Printf Raft Sim Test_raft
