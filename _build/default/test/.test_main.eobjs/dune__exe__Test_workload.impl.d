test/test_workload.ml: Alcotest Helpers List Myraft Option Printf Semisync Sim Stats Storage Workload
