test/test_binlog.ml: Alcotest Binlog Gen List Option QCheck QCheck_alcotest String
