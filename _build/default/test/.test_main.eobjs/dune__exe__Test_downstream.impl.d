test/test_downstream.ml: Alcotest Binlog Control Downstream Helpers List Myraft Option Printf Result Storage
