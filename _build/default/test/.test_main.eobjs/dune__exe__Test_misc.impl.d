test/test_misc.ml: Alcotest Binlog Downstream Helpers List Myraft Raft Sim String
