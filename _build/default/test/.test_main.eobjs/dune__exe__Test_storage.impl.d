test/test_storage.ml: Alcotest Binlog Int32 List Storage
