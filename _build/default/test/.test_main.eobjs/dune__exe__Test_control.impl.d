test/test_control.ml: Alcotest Binlog Control Helpers Myraft Option Printf Raft Result Semisync Sim Storage
