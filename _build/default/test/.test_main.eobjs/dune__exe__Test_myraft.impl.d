test/test_myraft.ml: Alcotest Binlog Helpers Int32 List Myraft Option Raft Sim Storage
