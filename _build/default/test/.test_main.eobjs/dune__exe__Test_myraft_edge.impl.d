test/test_myraft_edge.ml: Alcotest Binlog Helpers List Myraft Option Printf Raft Sim Storage Workload
