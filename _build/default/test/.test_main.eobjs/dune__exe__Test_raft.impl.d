test/test_raft.ml: Alcotest Binlog Hashtbl List Option Printf Raft Result Sim String
