test/helpers.ml: Alcotest Binlog Myraft Printf Sim String
