test/test_properties.ml: Binlog List Option Printf QCheck QCheck_alcotest Raft String
