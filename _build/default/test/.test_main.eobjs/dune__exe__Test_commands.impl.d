test/test_commands.ml: Alcotest Binlog Control Helpers List Myraft Option Printf Storage String
