test/test_semisync.ml: Alcotest Binlog Helpers List Myraft Option Printf Semisync Sim Storage
