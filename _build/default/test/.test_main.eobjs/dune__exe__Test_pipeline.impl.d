test/test_pipeline.ml: Alcotest Binlog List Myraft Printf Sim
