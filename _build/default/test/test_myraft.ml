(* Integration tests of the full MyRaft stack: MySQL servers + logtailers
   on a simulated network — write path, promotion/demotion orchestration,
   failover, crash recovery (§A.2), rotation, and availability. *)

let ms = Helpers.ms
let s = Helpers.s

let small () = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) ()

let single_region () =
  Helpers.bootstrapped ~members:(Myraft.Cluster.single_region_members ()) ()

let engines_converged cluster =
  let servers = Myraft.Cluster.servers cluster in
  let live = List.filter (fun srv -> not (Myraft.Server.is_crashed srv)) servers in
  match live with
  | [] -> false
  | first :: rest ->
    let c0 = Storage.Engine.committed_count (Myraft.Server.storage first) in
    let k0 = Storage.Engine.checksum (Myraft.Server.storage first) in
    List.for_all
      (fun srv ->
        Storage.Engine.committed_count (Myraft.Server.storage srv) = c0
        && Int32.equal (Storage.Engine.checksum (Myraft.Server.storage srv)) k0)
      rest
    && c0 > 0

let wait_converged ?(timeout = 30.0 *. s) cluster =
  Myraft.Cluster.run_until cluster ~timeout (fun () -> engines_converged cluster)

(* ----- bootstrap and writes ----- *)

let test_bootstrap_elects_writable_primary () =
  let cluster = small () in
  match Myraft.Cluster.primary cluster with
  | Some srv ->
    Alcotest.(check string) "mysql1 is primary" "mysql1" (Myraft.Server.id srv);
    Alcotest.(check bool) "writes enabled" true (Myraft.Server.writes_enabled srv);
    Alcotest.(check (option string)) "discovery published" (Some "mysql1")
      (Myraft.Service_discovery.primary_of (Myraft.Cluster.discovery cluster)
         ~replicaset:"rs-test")
  | None -> Alcotest.fail "no primary after bootstrap"

let test_write_commits_and_replicates () =
  let cluster = small () in
  Helpers.check_ok "write" (Helpers.direct_write cluster ~key:"hello" ~value:"world");
  (* data visible on the primary's engine *)
  (match Myraft.Cluster.primary cluster with
  | Some srv ->
    Alcotest.(check (option string)) "row on primary" (Some "world")
      (Storage.Engine.get (Myraft.Server.storage srv) ~table:"t" ~key:"hello")
  | None -> Alcotest.fail "no primary");
  Alcotest.(check bool) "all engines converge" true (wait_converged cluster);
  List.iter
    (fun srv ->
      Alcotest.(check (option string))
        (Myraft.Server.id srv ^ " has the row")
        (Some "world")
        (Storage.Engine.get (Myraft.Server.storage srv) ~table:"t" ~key:"hello"))
    (Myraft.Cluster.servers cluster)

let test_many_writes_converge () =
  let cluster = small () in
  let committed = Helpers.write_n cluster 50 in
  Alcotest.(check int) "all committed" 50 committed;
  Alcotest.(check bool) "engines converge" true (wait_converged cluster);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Alcotest.(check int) "row count" 51 (* 50 + bootstrap probe-free *)
    (Storage.Engine.row_count (Myraft.Server.storage primary) ~table:"t" + 1)

let test_replica_rejects_writes () =
  let cluster = small () in
  let replica =
    List.find
      (fun srv -> Myraft.Server.role srv = Myraft.Server.Replica)
      (Myraft.Cluster.servers cluster)
  in
  let outcome = ref None in
  Myraft.Server.submit_write replica ~table:"t"
    ~ops:[ Binlog.Event.Insert { key = "x"; value = "y" } ]
    ~reply:(fun o -> outcome := Some o);
  Myraft.Cluster.run_for cluster (100.0 *. ms);
  match !outcome with
  | Some (Myraft.Wire.Rejected _) -> ()
  | _ -> Alcotest.fail "replica accepted a write"

let test_gtids_preserved () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 5);
  Alcotest.(check bool) "converged" true (wait_converged cluster);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let set = Myraft.Server.gtid_executed primary in
  (* 5 transactions from mysql1 -> mysql1:1-5 *)
  Alcotest.(check bool) "gtid range present" true
    (Binlog.Gtid_set.contains set (Binlog.Gtid.make ~source:"mysql1" ~gno:5));
  Alcotest.(check int) "exactly five" 5 (Binlog.Gtid_set.cardinal set)

let test_opid_stamped_on_transactions () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 3);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let entries = Binlog.Log_store.all_entries (Myraft.Server.log primary) in
  let txns = List.filter Binlog.Entry.is_transaction entries in
  Alcotest.(check int) "three transactions in binlog" 3 (List.length txns);
  List.iter
    (fun e ->
      Alcotest.(check bool) "valid opid" true (Binlog.Entry.index e > 0);
      Alcotest.(check bool) "checksum verifies" true (Binlog.Entry.verify e))
    txns

(* ----- promotion / demotion ----- *)

let test_graceful_promotion () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 5);
  Helpers.check_ok "transfer" (Myraft.Cluster.transfer_leadership cluster ~target:"mysql2");
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(20.0 *. s) (fun () ->
        match Myraft.Cluster.primary cluster with
        | Some srv -> Myraft.Server.id srv = "mysql2"
        | None -> false)
  in
  Alcotest.(check bool) "mysql2 promoted" true ok;
  (* the old primary demoted and its server-side counters reflect it *)
  let old_primary = Option.get (Myraft.Cluster.server cluster "mysql1") in
  Alcotest.(check bool) "mysql1 demoted" true
    (Myraft.Server.role old_primary = Myraft.Server.Replica);
  Alcotest.(check int) "demotion count" 1 (Myraft.Server.demotions old_primary);
  (* writes work on the new primary and still replicate everywhere *)
  Helpers.check_ok "write after promotion"
    (Helpers.direct_write cluster ~key:"after" ~value:"promotion");
  Alcotest.(check bool) "converged" true (wait_converged cluster)

let test_new_primary_uses_own_gtid_source () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 3);
  Helpers.check_ok "transfer" (Myraft.Cluster.transfer_leadership cluster ~target:"mysql2");
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(20.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv = "mysql2"
         | None -> false));
  Helpers.check_ok "write" (Helpers.direct_write cluster ~key:"k" ~value:"v");
  let p = Option.get (Myraft.Cluster.primary cluster) in
  let set = Myraft.Server.gtid_executed p in
  Alcotest.(check bool) "old source gtids retained" true
    (Binlog.Gtid_set.contains set (Binlog.Gtid.make ~source:"mysql1" ~gno:3));
  Alcotest.(check bool) "new source gtid minted" true
    (Binlog.Gtid_set.contains set (Binlog.Gtid.make ~source:"mysql2" ~gno:1))

(* ----- failover ----- *)

let test_failover_after_primary_crash () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 5);
  Myraft.Cluster.crash cluster "mysql1";
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        match Myraft.Cluster.primary cluster with
        | Some srv -> Myraft.Server.id srv <> "mysql1"
        | None -> false)
  in
  Alcotest.(check bool) "new primary after crash" true ok;
  Helpers.check_ok "write after failover"
    (Helpers.direct_write cluster ~key:"post-failover" ~value:"ok")

let test_crashed_primary_rejoins_as_replica () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 5);
  Myraft.Cluster.crash cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         Myraft.Cluster.primary cluster <> None
         && Myraft.Server.id (Option.get (Myraft.Cluster.primary cluster)) <> "mysql1"));
  ignore (Helpers.write_n ~prefix:"while-down" cluster 5);
  Myraft.Cluster.restart cluster "mysql1";
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        Myraft.Server.role mysql1 = Myraft.Server.Replica && engines_converged cluster)
  in
  Alcotest.(check bool) "rejoined as consistent replica" true ok

let test_witness_hands_off_leadership () =
  (* Single region with two logtailers: on primary crash, a logtailer
     (longest log) may win; it must transfer to the MySQL server. *)
  let cluster = single_region () in
  ignore (Helpers.write_n cluster 5);
  Myraft.Cluster.crash cluster "mysql1";
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(40.0 *. s) (fun () ->
        match Myraft.Cluster.primary cluster with
        | Some srv -> Myraft.Server.id srv = "mysql2"
        | None -> false)
  in
  Alcotest.(check bool) "a MySQL server ends up primary" true ok;
  Helpers.check_ok "write" (Helpers.direct_write cluster ~key:"w" ~value:"x")

(* ----- crash recovery (§A.2) ----- *)

let test_recovery_case2_unreplicated_txn_truncated () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 3);
  Alcotest.(check bool) "converged" true (wait_converged cluster);
  (* Isolate the primary, let a write reach only its binlog, then crash. *)
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  Myraft.Cluster.isolate cluster "mysql1";
  let stranded = ref None in
  Myraft.Server.submit_write mysql1 ~table:"t"
    ~ops:[ Binlog.Event.Insert { key = "stranded"; value = "v" } ]
    ~reply:(fun o -> stranded := Some o);
  Myraft.Cluster.run_for cluster (300.0 *. ms);
  Alcotest.(check bool) "txn is in isolated primary's binlog" true
    (Binlog.Gtid_set.contains
       (Binlog.Log_store.gtid_set (Myraft.Server.log mysql1))
       (Binlog.Gtid.make ~source:"mysql1" ~gno:4));
  (* new leader elected meanwhile; old primary crashes and rejoins *)
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.heal cluster "mysql1";
  Myraft.Cluster.crash cluster "mysql1";
  Myraft.Cluster.restart cluster "mysql1";
  ignore (Helpers.write_n ~prefix:"fresh" cluster 2);
  let ok =
    Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
        engines_converged cluster)
  in
  Alcotest.(check bool) "converged after recovery" true ok;
  (* the stranded transaction was truncated from the rejoined log and its
     GTID removed (§3.3 step 4 / §A.2 case 2) *)
  Alcotest.(check bool) "stranded gtid gone from log" false
    (Binlog.Gtid_set.contains
       (Binlog.Log_store.gtid_set (Myraft.Server.log mysql1))
       (Binlog.Gtid.make ~source:"mysql1" ~gno:4));
  Alcotest.(check (option string)) "stranded row never committed" None
    (Storage.Engine.get (Myraft.Server.storage mysql1) ~table:"t" ~key:"stranded")

let test_recovery_case1_prepared_rolled_back () =
  (* A transaction prepared in the engine but never written to the binlog
     is rolled back on restart with no reconciliation (§A.2 case 1). *)
  let cluster = small () in
  ignore (Helpers.write_n cluster 2);
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  Storage.Engine.prepare (Myraft.Server.storage mysql1)
    ~gtid:(Binlog.Gtid.make ~source:"mysql1" ~gno:99)
    ~writes:[ ("t", Binlog.Event.Insert { key = "ghost"; value = "boo" }) ];
  Myraft.Cluster.crash cluster "mysql1";
  Myraft.Cluster.restart cluster "mysql1";
  Myraft.Cluster.run_for cluster s;
  Alcotest.(check (option string)) "ghost rolled back" None
    (Storage.Engine.get (Myraft.Server.storage mysql1) ~table:"t" ~key:"ghost");
  Alcotest.(check int) "no prepared txns" 0
    (List.length (Storage.Engine.prepared_gtids (Myraft.Server.storage mysql1)))

let test_recovery_case3_replicated_txn_reapplied () =
  (* §A.2 case 3: the transaction reached the next leader's log but the
     old primary crashed before engine commit — after recovery rolls the
     prepared copy back, the applier re-applies it from scratch and no
     truncation happens (the logs match). *)
  let cluster = small () in
  ignore (Helpers.write_n cluster 3);
  Alcotest.(check bool) "converged" true (wait_converged cluster);
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  (* submit a write and crash the primary at a moment when the entry has
     been flushed + replicated but not yet engine-committed: cut the
     reply path by crashing right after the flush window *)
  Myraft.Server.submit_write mysql1 ~table:"t"
    ~ops:[ Binlog.Event.Insert { key = "case3"; value = "v" } ]
    ~reply:(fun _ -> ());
  (* flush ~0.2ms, in-region replication ~0.2ms; crash shortly after the
     entry is out the door but before the commit stage finishes *)
  Myraft.Cluster.run_for cluster (400.0 *. Sim.Engine.us);
  let in_own_log =
    Binlog.Gtid_set.contains
      (Binlog.Log_store.gtid_set (Myraft.Server.log mysql1))
      (Binlog.Gtid.make ~source:"mysql1" ~gno:4)
  in
  Myraft.Cluster.crash cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.restart cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         engines_converged cluster));
  if in_own_log then begin
    (* the entry survived into the new ring: no truncation on mysql1 and
       the row was re-applied from scratch by the applier *)
    Alcotest.(check int) "no truncations on mysql1" 0
      (List.length (Myraft.Server.truncated_gtids mysql1));
    Alcotest.(check (option string)) "row applied after recovery" (Some "v")
      (Storage.Engine.get (Myraft.Server.storage mysql1) ~table:"t" ~key:"case3")
  end

(* ----- rotation / purge (§A.1) ----- *)

let test_rotate_replicated () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 3);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Helpers.check_ok "flush" (Myraft.Server.flush_binary_logs primary);
  ignore (Helpers.write_n ~prefix:"post-rotate" cluster 3);
  Alcotest.(check bool) "converged" true (wait_converged cluster);
  (* every live server's log rotated (≥ 2 files) because the rotate event
     itself is replicated (§A.1) *)
  List.iter
    (fun srv ->
      let files = Binlog.Log_store.file_names (Myraft.Server.log srv) in
      Alcotest.(check bool)
        (Myraft.Server.id srv ^ " rotated")
        true
        (List.length files >= 2))
    (Myraft.Cluster.servers cluster)

let test_purge_respects_watermarks () =
  let cluster = small () in
  ignore (Helpers.write_n cluster 5);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Helpers.check_ok "flush" (Myraft.Server.flush_binary_logs primary);
  ignore (Helpers.write_n ~prefix:"second-file" cluster 5);
  Alcotest.(check bool) "converged" true (wait_converged cluster);
  Myraft.Cluster.run_for cluster (2.0 *. s) (* let acks settle *);
  let purged = Myraft.Server.purge_binary_logs primary in
  Alcotest.(check bool) "purged the shipped file" true (purged >= 1);
  (* log tail still intact *)
  Helpers.check_ok "write after purge"
    (Helpers.direct_write cluster ~key:"after-purge" ~value:"v")

let test_purge_blocked_by_lagging_region () =
  (* Two regions; remote follower crashed => nothing shipped out of its
     region => region watermark heuristic must block purging. *)
  let members =
    [
      Myraft.Cluster.mysql "mysql1" "r1";
      Myraft.Cluster.logtailer "lt1a" "r1";
      Myraft.Cluster.logtailer "lt1b" "r1";
      Myraft.Cluster.mysql "mysql2" "r2";
    ]
  in
  let cluster = Helpers.bootstrapped ~members () in
  (* mysql2 dies right after bootstrap: nothing past the bootstrap no-op
     ever ships to r2, so files holding the later writes must survive
     any purge attempt. *)
  Myraft.Cluster.crash cluster "mysql2";
  ignore (Helpers.write_n cluster 5);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let first_write_index =
    Binlog.Opid.index (Binlog.Log_store.last_opid (Myraft.Server.log primary)) - 4
  in
  Helpers.check_ok "flush" (Myraft.Server.flush_binary_logs primary);
  ignore (Helpers.write_n ~prefix:"more" cluster 5);
  Myraft.Cluster.run_for cluster (2.0 *. s);
  ignore (Myraft.Server.purge_binary_logs primary);
  Alcotest.(check bool) "unshipped entries survive purge" true
    (Binlog.Log_store.entry_at (Myraft.Server.log primary) first_write_index <> None);
  Alcotest.(check bool) "safe purge index below unshipped writes" true
    (Raft.Node.safe_purge_index (Myraft.Server.raft primary) < first_write_index)

(* ----- availability probe ----- *)

let test_steady_state_no_downtime () =
  let cluster = small () in
  let probe = Myraft.Availability.start cluster ~client_id:"probe0" in
  let t0 = Myraft.Cluster.now cluster in
  Myraft.Cluster.run_for cluster (5.0 *. s);
  let t1 = Myraft.Cluster.now cluster in
  Myraft.Availability.stop probe;
  Alcotest.(check bool) "probes succeeded" true (Myraft.Availability.successes probe > 100);
  let downtime = Myraft.Availability.max_downtime probe ~start_time:t0 ~end_time:t1 in
  if downtime > 200.0 *. ms then
    Alcotest.failf "unexpected steady-state downtime: %.0fus" downtime

let test_failover_downtime_measured () =
  let cluster = small () in
  let probe = Myraft.Availability.start cluster ~client_id:"probe0" in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let crash_at = Myraft.Cluster.now cluster in
  Myraft.Cluster.crash cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.run_for cluster (5.0 *. s);
  let end_at = Myraft.Cluster.now cluster in
  Myraft.Availability.stop probe;
  let downtime = Myraft.Availability.max_downtime probe ~start_time:crash_at ~end_time:end_at in
  (* Raft failover: ~1.5-2s detection + election + promotion; well under
     the prior setup's ~60s. *)
  if downtime < 500.0 *. ms || downtime > 15.0 *. s then
    Alcotest.failf "implausible failover downtime: %.0fms" (downtime /. ms)

(* ----- Table 1 roles ----- *)

let test_roles_table () =
  let rendered = Myraft.Roles.render () in
  Alcotest.(check bool) "mentions witness" true
    (Helpers.contains rendered "Witness");
  Alcotest.(check bool) "mentions semi-sync acker" true
    (Helpers.contains rendered "Semi-Sync Acker")

let suites =
  [
    ( "myraft.writes",
      [
        Alcotest.test_case "bootstrap elects writable primary" `Quick
          test_bootstrap_elects_writable_primary;
        Alcotest.test_case "write commits and replicates" `Quick
          test_write_commits_and_replicates;
        Alcotest.test_case "many writes converge" `Quick test_many_writes_converge;
        Alcotest.test_case "replica rejects writes" `Quick test_replica_rejects_writes;
        Alcotest.test_case "gtids preserved" `Quick test_gtids_preserved;
        Alcotest.test_case "opids stamped" `Quick test_opid_stamped_on_transactions;
      ] );
    ( "myraft.promotion",
      [
        Alcotest.test_case "graceful promotion" `Quick test_graceful_promotion;
        Alcotest.test_case "new primary mints own gtids" `Quick
          test_new_primary_uses_own_gtid_source;
      ] );
    ( "myraft.failover",
      [
        Alcotest.test_case "failover after crash" `Quick test_failover_after_primary_crash;
        Alcotest.test_case "crashed primary rejoins as replica" `Quick
          test_crashed_primary_rejoins_as_replica;
        Alcotest.test_case "witness hands off leadership" `Quick
          test_witness_hands_off_leadership;
      ] );
    ( "myraft.recovery",
      [
        Alcotest.test_case "case 2: unreplicated txn truncated" `Quick
          test_recovery_case2_unreplicated_txn_truncated;
        Alcotest.test_case "case 1: prepared-only rolled back" `Quick
          test_recovery_case1_prepared_rolled_back;
        Alcotest.test_case "case 3: replicated txn reapplied" `Quick
          test_recovery_case3_replicated_txn_reapplied;
      ] );
    ( "myraft.logs",
      [
        Alcotest.test_case "rotate replicated" `Quick test_rotate_replicated;
        Alcotest.test_case "purge respects watermarks" `Quick test_purge_respects_watermarks;
        Alcotest.test_case "purge blocked by lagging region" `Quick
          test_purge_blocked_by_lagging_region;
      ] );
    ( "myraft.availability",
      [
        Alcotest.test_case "steady state no downtime" `Quick test_steady_state_no_downtime;
        Alcotest.test_case "failover downtime measured" `Quick
          test_failover_downtime_measured;
      ] );
    ("myraft.roles", [ Alcotest.test_case "table 1" `Quick test_roles_table ]);
  ]
