(* Randomized Raft safety checks: run a ring under a random schedule of
   crashes, restarts, partitions and client appends, and continuously
   verify the Raft safety properties the paper relies on (§4.1):

   - election safety: at most one leader per term, ever;
   - state-machine safety: if any node considers index i committed with
     term t and checksum c, no node ever considers i committed with a
     different (t, c);
   - convergence: after healing, all live logs become identical.

   Runs in both classic-majority and FlexiRaft single-region-dynamic
   modes over several seeds. *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

type world = {
  h : Test_raft.harness;
  rng : Sim.Rng.t;
  committed : (int, int * int32) Hashtbl.t; (* index -> (term, checksum) *)
  checked_up_to : (string, int ref) Hashtbl.t;
  mutable gno : int;
}

let node_ids w = w.h.Test_raft.order

let up w id = (Test_raft.get w.h id).Test_raft.up

(* Validate every newly committed entry on every live node against the
   global committed table. *)
let check_commit_safety w =
  List.iter
    (fun id ->
      let n = Test_raft.get w.h id in
      if n.Test_raft.up then begin
        let raft = Test_raft.raft n in
        let upto =
          match Hashtbl.find_opt w.checked_up_to id with
          | Some r -> r
          | None ->
            let r = ref 0 in
            Hashtbl.replace w.checked_up_to id r;
            r
        in
        let commit = Raft.Node.commit_index raft in
        for i = !upto + 1 to commit do
          match Binlog.Log_store.entry_at n.Test_raft.store i with
          | None -> () (* purged; nothing to compare *)
          | Some e -> (
            let sig_ = (Binlog.Entry.term e, Binlog.Entry.checksum e) in
            match Hashtbl.find_opt w.committed i with
            | None -> Hashtbl.replace w.committed i sig_
            | Some existing ->
              if existing <> sig_ then
                Alcotest.failf
                  "state-machine safety violated at index %d on %s: (%d) vs (%d)" i id
                  (fst existing) (fst sig_))
        done;
        if commit > !upto then upto := commit
      end)
    (node_ids w)

let check_election_safety w =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Test_raft.get w.h id in
      List.iter
        (fun term ->
          match Hashtbl.find_opt seen term with
          | Some other when other <> id ->
            Alcotest.failf "election safety violated: term %d elected both %s and %s" term
              other id
          | _ -> Hashtbl.replace seen term id)
        n.Test_raft.leader_terms)
    (node_ids w)

let try_append w =
  match Test_raft.leaders w.h with
  | [ leader ] ->
    w.gno <- w.gno + 1;
    ignore
      (Raft.Node.client_append
         (Test_raft.raft (Test_raft.get w.h leader))
         (Binlog.Entry.Transaction
            {
              gtid = Binlog.Gtid.make ~source:"chaos" ~gno:w.gno;
              events =
                [
                  Binlog.Event.make
                    (Binlog.Event.Write_rows
                       {
                         table = "t";
                         ops =
                           [
                             Binlog.Event.Insert
                               { key = Printf.sprintf "k%d" w.gno; value = "v" };
                           ];
                       });
                ];
            }))
  | _ -> ()

let regions w =
  List.sort_uniq compare
    (List.map (fun id -> (Test_raft.get w.h id).Test_raft.node_region) (node_ids w))

let chaos_step w =
  let roll = Sim.Rng.float w.rng in
  let ids = Array.of_list (node_ids w) in
  let down_count = List.length (List.filter (fun id -> not (up w id)) (node_ids w)) in
  if roll < 0.15 && down_count < 2 then begin
    (* crash someone (keep at most 2 down so quorums stay possible) *)
    let victim = Sim.Rng.pick w.rng ids in
    if up w victim then Test_raft.crash w.h victim
  end
  else if roll < 0.35 then begin
    (* restart someone *)
    let victim = Sim.Rng.pick w.rng ids in
    if not (up w victim) then Test_raft.restart w.h victim
  end
  else if roll < 0.42 then begin
    (* cut two random regions apart for a while *)
    match regions w with
    | (_ :: _ :: _) as rs ->
      let arr = Array.of_list rs in
      let a = Sim.Rng.pick w.rng arr and b = Sim.Rng.pick w.rng arr in
      if a <> b then begin
        Sim.Network.cut_regions w.h.Test_raft.net a b;
        ignore
          (Sim.Engine.schedule w.h.Test_raft.engine
             ~delay:(Sim.Rng.uniform w.rng ~lo:(1.0 *. s) ~hi:(6.0 *. s))
             (fun () -> Sim.Network.heal_regions w.h.Test_raft.net a b))
      end
    | _ -> ()
  end
  else if roll < 0.5 then begin
    (* isolate one node briefly (asymmetric failure) *)
    let victim = Sim.Rng.pick w.rng ids in
    Sim.Network.isolate_node w.h.Test_raft.net victim;
    ignore
      (Sim.Engine.schedule w.h.Test_raft.engine
         ~delay:(Sim.Rng.uniform w.rng ~lo:(1.0 *. s) ~hi:(4.0 *. s))
         (fun () -> Sim.Network.heal_node w.h.Test_raft.net victim))
  end
  else if roll < 0.9 then try_append w

let run_chaos ~seed ~params ~members ~steps =
  let h = Test_raft.make_harness ~seed ~params members in
  let w =
    {
      h;
      rng = Sim.Rng.of_int (seed * 7919);
      committed = Hashtbl.create 1024;
      checked_up_to = Hashtbl.create 8;
      gno = 0;
    }
  in
  (* give the ring time to elect before the abuse starts *)
  Sim.Engine.run_for h.Test_raft.engine (5.0 *. s);
  for _ = 1 to steps do
    chaos_step w;
    Sim.Engine.run_for h.Test_raft.engine (250.0 *. ms);
    check_commit_safety w;
    check_election_safety w
  done;
  (* heal everything and verify convergence *)
  Sim.Network.heal_all w.h.Test_raft.net;
  List.iter (fun id -> if not (up w id) then Test_raft.restart w.h id) (node_ids w);
  let converged () =
    match Test_raft.leaders w.h with
    | [ leader ] ->
      let target =
        Binlog.Log_store.last_opid (Test_raft.get w.h leader).Test_raft.store
      in
      Binlog.Opid.index target > 0
      && List.for_all
           (fun id ->
             Binlog.Opid.equal
               (Binlog.Log_store.last_opid (Test_raft.get w.h id).Test_raft.store)
               target)
           (node_ids w)
    | _ -> false
  in
  let ok = Test_raft.run_until w.h ~timeout:(60.0 *. s) converged in
  Alcotest.(check bool) "logs converge after healing" true ok;
  check_commit_safety w;
  check_election_safety w;
  (* final pairwise log equality by checksum *)
  (match node_ids w with
  | first :: rest ->
    let reference = Binlog.Log_store.all_entries (Test_raft.get w.h first).Test_raft.store in
    List.iter
      (fun id ->
        let entries = Binlog.Log_store.all_entries (Test_raft.get w.h id).Test_raft.store in
        Alcotest.(check int) (id ^ " same length") (List.length reference)
          (List.length entries);
        List.iter2
          (fun a b ->
            if
              not
                (Binlog.Opid.equal (Binlog.Entry.opid a) (Binlog.Entry.opid b)
                && Int32.equal (Binlog.Entry.checksum a) (Binlog.Entry.checksum b))
            then Alcotest.failf "log divergence on %s at %s" id (Binlog.Entry.describe a))
          reference entries)
      rest
  | [] -> ());
  Hashtbl.length w.committed

let majority_members () =
  [
    ("n1", "r1", true, Raft.Types.Mysql_server);
    ("n2", "r1", true, Raft.Types.Mysql_server);
    ("n3", "r1", true, Raft.Types.Mysql_server);
    ("n4", "r1", true, Raft.Types.Mysql_server);
    ("n5", "r1", true, Raft.Types.Mysql_server);
  ]

let flexi_members () =
  [
    ("a1", "r1", true, Raft.Types.Mysql_server);
    ("a2", "r1", true, Raft.Types.Logtailer);
    ("a3", "r1", true, Raft.Types.Logtailer);
    ("b1", "r2", true, Raft.Types.Mysql_server);
    ("b2", "r2", true, Raft.Types.Logtailer);
    ("b3", "r2", true, Raft.Types.Logtailer);
  ]

let test_chaos_majority () =
  List.iter
    (fun seed ->
      let committed =
        run_chaos ~seed ~params:Test_raft.majority_params ~members:(majority_members ())
          ~steps:120
      in
      if committed < 10 then Alcotest.failf "too little progress (seed %d)" seed)
    [ 1; 2; 3 ]

let test_chaos_flexiraft () =
  List.iter
    (fun seed ->
      let committed =
        run_chaos ~seed ~params:Test_raft.flexi_params ~members:(flexi_members ())
          ~steps:120
      in
      if committed < 10 then Alcotest.failf "too little progress (seed %d)" seed)
    [ 4; 5; 6 ]

let test_chaos_with_proxying () =
  let params = { Test_raft.flexi_params with Raft.Node.proxying = true } in
  let committed =
    run_chaos ~seed:9 ~params ~members:(flexi_members ()) ~steps:120
  in
  if committed < 10 then Alcotest.fail "too little progress with proxying"

let suites =
  [
    ( "raft.safety",
      [
        Alcotest.test_case "chaos: classic majority" `Slow test_chaos_majority;
        Alcotest.test_case "chaos: flexiraft SRD" `Slow test_chaos_flexiraft;
        Alcotest.test_case "chaos: flexiraft + proxying" `Slow test_chaos_with_proxying;
      ] );
  ]
