(* The §3 command surface: SHOW/FLUSH/PURGE keep working under MyRaft;
   CHANGE MASTER / RESET are disallowed.  Plus the §A.1 binlog janitor. *)

let s = Helpers.s

let cluster_with_writes () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  ignore (Helpers.write_n cluster 5);
  cluster

let test_show_binary_logs () =
  let cluster = cluster_with_writes () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  match Myraft.Commands.show_binary_logs primary with
  | Myraft.Commands.Rows { header; rows } ->
    Alcotest.(check (list string)) "header" [ "Log_name"; "File_size"; "Entry_count" ] header;
    Alcotest.(check bool) "at least one file" true (rows <> []);
    Alcotest.(check bool) "binlog naming" true
      (List.for_all (fun row -> Helpers.contains (List.hd row) "log") rows)
  | _ -> Alcotest.fail "expected rows"

let test_show_master_status () =
  let cluster = cluster_with_writes () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  match Myraft.Commands.show_master_status primary with
  | Myraft.Commands.Rows { rows = [ [ _file; position; gtids ] ]; _ } ->
    Alcotest.(check bool) "position advanced" true (int_of_string position >= 6);
    Alcotest.(check bool) "gtid set rendered" true (Helpers.contains gtids "mysql1:1-5")
  | _ -> Alcotest.fail "expected one row"

let test_show_replica_status () =
  let cluster = cluster_with_writes () in
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  match Myraft.Commands.show_replica_status replica with
  | Myraft.Commands.Rows { rows = [ row ]; _ } ->
    Alcotest.(check string) "role" "replica" (List.nth row 0);
    Alcotest.(check string) "raft role" "follower" (List.nth row 1);
    Alcotest.(check string) "knows leader" "mysql1" (List.nth row 3);
    Alcotest.(check string) "caught up" "0" (List.nth row 6)
  | _ -> Alcotest.fail "expected one row"

let test_disallowed_commands () =
  let cluster = cluster_with_writes () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let check name = function
    | Myraft.Commands.Disallowed msg ->
      Alcotest.(check bool) (name ^ " mentions raft") true
        (Helpers.contains (String.lowercase_ascii msg) "raft")
    | _ -> Alcotest.failf "%s must be disallowed" name
  in
  check "change master" (Myraft.Commands.change_master_to primary);
  check "reset master" (Myraft.Commands.reset_master primary);
  check "reset replication" (Myraft.Commands.reset_replication primary)

let test_flush_command_on_replica_fails () =
  let cluster = cluster_with_writes () in
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  match Myraft.Commands.flush_binary_logs replica with
  | Myraft.Commands.Disallowed _ -> ()
  | _ -> Alcotest.fail "flush on replica must fail"

let test_render () =
  let cluster = cluster_with_writes () in
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let text = Myraft.Commands.render (Myraft.Commands.show_binary_logs primary) in
  Alcotest.(check bool) "renders a table" true (Helpers.contains text "Log_name")

let test_binlog_janitor_rotates_and_purges () =
  let params = { Myraft.Params.default with Myraft.Params.max_binlog_bytes = 4_096 } in
  let cluster =
    Helpers.bootstrapped ~params ~members:(Myraft.Cluster.small_members ()) ()
  in
  let janitor = Control.Automation.start_binlog_janitor ~keep_files:3 cluster in
  (* write in pulses so the janitor's monitoring loop sees the file grow
     past its 4KB budget repeatedly *)
  for batch = 0 to 7 do
    ignore (Helpers.write_n ~prefix:(Printf.sprintf "k%d-" batch) cluster 40);
    Myraft.Cluster.run_for cluster (3.0 *. s)
  done;
  Control.Automation.stop_janitor janitor;
  Alcotest.(check bool) "rotated" true (Control.Automation.rotations janitor >= 2);
  Alcotest.(check bool) "purged" true (Control.Automation.purges janitor >= 1);
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Alcotest.(check bool) "file count bounded" true
    (List.length (Binlog.Log_store.file_names (Myraft.Server.log primary)) <= 5);
  (* the data is still all there *)
  Alcotest.(check (option string)) "data intact" (Some "v")
    (Storage.Engine.get (Myraft.Server.storage primary) ~table:"t" ~key:"k3-17")

let suites =
  [
    ( "myraft.commands",
      [
        Alcotest.test_case "SHOW BINARY LOGS" `Quick test_show_binary_logs;
        Alcotest.test_case "SHOW MASTER STATUS" `Quick test_show_master_status;
        Alcotest.test_case "SHOW REPLICA STATUS" `Quick test_show_replica_status;
        Alcotest.test_case "CHANGE MASTER / RESET disallowed" `Quick test_disallowed_commands;
        Alcotest.test_case "FLUSH on replica fails" `Quick test_flush_command_on_replica_fails;
        Alcotest.test_case "render" `Quick test_render;
      ] );
    ( "control.binlog_janitor",
      [
        Alcotest.test_case "rotates by size and purges" `Quick
          test_binlog_janitor_rotates_and_purges;
      ] );
  ]
