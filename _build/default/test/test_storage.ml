(* Storage engine tests: 2PC prepare/commit/rollback, locks, recovery. *)

let gtid gno = Binlog.Gtid.make ~source:"srv1" ~gno

let opid index = Binlog.Opid.make ~term:1 ~index

let insert key value = Binlog.Event.Insert { key; value }

let test_prepare_commit_visible () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "k" "v") ];
  Alcotest.(check (option string)) "invisible while prepared" None
    (Storage.Engine.get e ~table:"t" ~key:"k");
  Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
  Alcotest.(check (option string)) "visible after commit" (Some "v")
    (Storage.Engine.get e ~table:"t" ~key:"k");
  Alcotest.(check bool) "gtid executed" true (Storage.Engine.has_committed e (gtid 1));
  Alcotest.(check int) "committed count" 1 (Storage.Engine.committed_count e)

let test_rollback_discards () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "k" "v") ];
  Storage.Engine.rollback_prepared e ~gtid:(gtid 1);
  Alcotest.(check (option string)) "no data" None (Storage.Engine.get e ~table:"t" ~key:"k");
  Alcotest.(check bool) "gtid not executed" false (Storage.Engine.has_committed e (gtid 1));
  (* the same gtid can be prepared again (reapply after rollback, §A.2) *)
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "k" "v2") ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
  Alcotest.(check (option string)) "reapplied" (Some "v2")
    (Storage.Engine.get e ~table:"t" ~key:"k")

let test_lock_conflict () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "k" "v") ];
  (match Storage.Engine.prepare e ~gtid:(gtid 2) ~writes:[ ("t", insert "k" "w") ] with
  | () -> Alcotest.fail "expected lock conflict"
  | exception Storage.Engine.Lock_conflict { holder; _ } ->
    Alcotest.(check bool) "held by txn 1" true (Binlog.Gtid.equal holder (gtid 1)));
  Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
  (* lock released at engine commit *)
  Storage.Engine.prepare e ~gtid:(gtid 2) ~writes:[ ("t", insert "k" "w") ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 2) ~opid:(opid 2);
  Alcotest.(check (option string)) "second write wins" (Some "w")
    (Storage.Engine.get e ~table:"t" ~key:"k")

let test_no_conflict_disjoint_keys () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "a" "1") ];
  Storage.Engine.prepare e ~gtid:(gtid 2) ~writes:[ ("t", insert "b" "2") ];
  Alcotest.(check int) "two prepared" 2 (List.length (Storage.Engine.prepared_gtids e))

let test_crash_recovery_rolls_back_prepared () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "a" "1") ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
  Storage.Engine.prepare e ~gtid:(gtid 2) ~writes:[ ("t", insert "b" "2") ];
  let rolled = Storage.Engine.crash_recover e in
  Alcotest.(check int) "one rolled back" 1 rolled;
  Alcotest.(check (option string)) "committed survives" (Some "1")
    (Storage.Engine.get e ~table:"t" ~key:"a");
  Alcotest.(check (option string)) "prepared gone" None
    (Storage.Engine.get e ~table:"t" ~key:"b");
  Alcotest.(check int) "recovery point" 1
    (Binlog.Opid.index (Storage.Engine.last_committed_opid e))

let test_update_delete_ops () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "k" "v1") ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
  Storage.Engine.prepare e ~gtid:(gtid 2)
    ~writes:[ ("t", Binlog.Event.Update { key = "k"; before = "v1"; after = "v2" }) ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 2) ~opid:(opid 2);
  Alcotest.(check (option string)) "updated" (Some "v2")
    (Storage.Engine.get e ~table:"t" ~key:"k");
  Storage.Engine.prepare e ~gtid:(gtid 3)
    ~writes:[ ("t", Binlog.Event.Delete { key = "k"; before = "v2" }) ];
  Storage.Engine.commit_prepared e ~gtid:(gtid 3) ~opid:(opid 3);
  Alcotest.(check (option string)) "deleted" None (Storage.Engine.get e ~table:"t" ~key:"k");
  Alcotest.(check int) "row count" 0 (Storage.Engine.row_count e ~table:"t")

let test_checksum_equality () =
  let mk () =
    let e = Storage.Engine.create () in
    Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "a" "1") ];
    Storage.Engine.commit_prepared e ~gtid:(gtid 1) ~opid:(opid 1);
    Storage.Engine.prepare e ~gtid:(gtid 2) ~writes:[ ("u", insert "b" "2") ];
    Storage.Engine.commit_prepared e ~gtid:(gtid 2) ~opid:(opid 2);
    e
  in
  let a = mk () and b = mk () in
  Alcotest.(check int32) "identical content, identical checksum"
    (Storage.Engine.checksum a) (Storage.Engine.checksum b);
  Storage.Engine.prepare b ~gtid:(gtid 3) ~writes:[ ("t", insert "c" "3") ];
  Storage.Engine.commit_prepared b ~gtid:(gtid 3) ~opid:(opid 3);
  Alcotest.(check bool) "diverged content, different checksum" false
    (Int32.equal (Storage.Engine.checksum a) (Storage.Engine.checksum b))

let test_duplicate_prepare_rejected () =
  let e = Storage.Engine.create () in
  Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "a" "1") ];
  Alcotest.check_raises "duplicate" (Invalid_argument "Engine.prepare: duplicate gtid")
    (fun () -> Storage.Engine.prepare e ~gtid:(gtid 1) ~writes:[ ("t", insert "b" "2") ])

let suites =
  [
    ( "storage.engine",
      [
        Alcotest.test_case "prepare/commit visibility" `Quick test_prepare_commit_visible;
        Alcotest.test_case "rollback discards" `Quick test_rollback_discards;
        Alcotest.test_case "lock conflict" `Quick test_lock_conflict;
        Alcotest.test_case "disjoint keys no conflict" `Quick test_no_conflict_disjoint_keys;
        Alcotest.test_case "crash recovery" `Quick test_crash_recovery_rolls_back_prepared;
        Alcotest.test_case "update/delete" `Quick test_update_delete_ops;
        Alcotest.test_case "content checksums" `Quick test_checksum_equality;
        Alcotest.test_case "duplicate prepare rejected" `Quick test_duplicate_prepare_rejected;
      ] );
  ]
