(* Downstream consumers (§3, §5.1): CDC tailers and the backup/restore
   service that the binlog format was preserved for. *)

let ms = Helpers.ms
let s = Helpers.s

(* ----- CDC ----- *)

let test_cdc_streams_committed_txns () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let cdc = Downstream.Cdc.start ~source:"mysql2" cluster in
  ignore (Helpers.write_n cluster 20);
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Downstream.Cdc.stop cdc;
  Alcotest.(check int) "all txns streamed" 20 (Downstream.Cdc.record_count cdc);
  (match Downstream.Cdc.validate cdc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stream invalid: %s" e);
  (* stream carries GTIDs and the row payloads *)
  let first = List.hd (Downstream.Cdc.records cdc) in
  Alcotest.(check string) "gtid source" "mysql1"
    (Binlog.Gtid.source first.Downstream.Cdc.gtid);
  Alcotest.(check bool) "row ops present" true (first.Downstream.Cdc.table_ops <> [])

let test_cdc_survives_failover_no_dups () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let cdc = Downstream.Cdc.start ~source:"mysql1" cluster in
  ignore (Helpers.write_n cluster 10);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  (* the CDC source (and primary) dies: tailer must re-attach and the
     stream must stay exactly-once *)
  Myraft.Cluster.crash cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  ignore (Helpers.write_n ~prefix:"post" cluster 10);
  Myraft.Cluster.run_for cluster (2.0 *. s);
  Downstream.Cdc.stop cdc;
  Alcotest.(check bool) "re-attached" true (Downstream.Cdc.reattachments cdc >= 1);
  Alcotest.(check bool) "source switched" true (Downstream.Cdc.source cdc <> "mysql1");
  Alcotest.(check int) "exactly-once across failover" 20 (Downstream.Cdc.record_count cdc);
  match Downstream.Cdc.validate cdc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stream invalid: %s" e

let test_cdc_never_streams_truncated_txn () =
  (* Recovery case 2 (§A.2): a transaction that reaches only the
     isolated primary's binlog is later truncated — CDC, reading only
     below the commit marker, must never have streamed it. *)
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  let cdc = Downstream.Cdc.start ~source:"mysql1" cluster in
  ignore (Helpers.write_n cluster 3);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  Myraft.Cluster.isolate cluster "mysql1";
  Myraft.Server.submit_write mysql1 ~table:"t"
    ~ops:[ Binlog.Event.Insert { key = "stranded"; value = "v" } ]
    ~reply:(fun _ -> ());
  Myraft.Cluster.run_for cluster (300.0 *. ms);
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.heal cluster "mysql1";
  let fresh_committed = Helpers.write_n ~prefix:"fresh" cluster 3 in
  Myraft.Cluster.run_for cluster (3.0 *. s);
  Downstream.Cdc.stop cdc;
  (* the stranded gtid (mysql1:4) must not be in the stream *)
  Alcotest.(check bool) "stranded txn not streamed" false
    (Binlog.Gtid_set.contains
       (Downstream.Cdc.seen_gtids cdc)
       (Binlog.Gtid.make ~source:"mysql1" ~gno:4));
  match Downstream.Cdc.validate cdc with
  | Ok n -> Alcotest.(check int) "all committed txns streamed" (3 + fresh_committed) n
  | Error e -> Alcotest.failf "stream invalid: %s" e

(* ----- backup / restore ----- *)

let test_backup_roundtrip () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  ignore (Helpers.write_n cluster 15);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  match Downstream.Backup.take replica with
  | Error e -> Alcotest.failf "take: %s" e
  | Ok backup ->
    Alcotest.(check bool) "covers the txns" true
      (Downstream.Backup.entry_count backup >= 15);
    Alcotest.(check bool) "gtids recorded" true
      (Binlog.Gtid_set.contains
         (Downstream.Backup.gtid_executed backup)
         (Binlog.Gtid.make ~source:"mysql1" ~gno:15));
    (* consistency check against another live member *)
    (match Downstream.Backup.verify_against backup
             (Option.get (Myraft.Cluster.server cluster "mysql3"))
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "verify: %s" e)

let test_restore_seeds_fresh_server () =
  let cluster = Helpers.bootstrapped ~members:(Myraft.Cluster.small_members ()) () in
  ignore (Helpers.write_n cluster 10);
  Myraft.Cluster.run_for cluster (1.0 *. s);
  let backup =
    Result.get_ok (Downstream.Backup.take (Option.get (Myraft.Cluster.server cluster "mysql2")))
  in
  (* a brand-new node outside the ring, restored from the backup *)
  Myraft.Cluster.add_server cluster (Myraft.Cluster.mysql "mysql9" "r1");
  let fresh = Option.get (Myraft.Cluster.server cluster "mysql9") in
  (match Downstream.Backup.restore_into_server backup fresh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "restore: %s" e);
  Alcotest.(check (option string)) "row restored" (Some "v")
    (Storage.Engine.get (Myraft.Server.storage fresh) ~table:"t" ~key:"k7");
  Alcotest.(check int) "log position restored"
    (Binlog.Opid.index (Downstream.Backup.position backup))
    (Binlog.Log_store.last_index (Myraft.Server.log fresh));
  (* restoring twice is rejected *)
  match Downstream.Backup.restore_into_server backup fresh with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double restore accepted"

let test_replace_member_after_purge_needs_backup () =
  (* Purge the ring's history, then replace a member: without a backup
     the newcomer can never backfill; seeded from one, it catches up. *)
  let params = { Myraft.Params.default with Myraft.Params.max_binlog_bytes = 2_048 } in
  let cluster = Helpers.bootstrapped ~params ~members:(Myraft.Cluster.small_members ()) () in
  let janitor = Control.Automation.start_binlog_janitor ~keep_files:2 cluster in
  for batch = 0 to 4 do
    ignore (Helpers.write_n ~prefix:(Printf.sprintf "b%d-" batch) cluster 30);
    Myraft.Cluster.run_for cluster (3.0 *. s)
  done;
  Control.Automation.stop_janitor janitor;
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  Alcotest.(check bool) "history was purged" true
    (Binlog.Log_store.purged_below (Myraft.Server.log primary) > 1);
  (* take the backup from a member with full history: the replica that
     never purged *)
  let backup =
    Result.get_ok (Downstream.Backup.take (Option.get (Myraft.Cluster.server cluster "mysql2")))
  in
  Myraft.Cluster.crash cluster "mysql3";
  Myraft.Cluster.run_for cluster (2.0 *. s);
  (match
     Control.Automation.replace_member ~backup cluster ~dead:"mysql3"
       ~replacement_id:"mysql4"
   with
  | Ok r -> Alcotest.(check string) "added" "mysql4" r.Control.Automation.added
  | Error e -> Alcotest.failf "replace with backup: %s" e);
  (* the newcomer serves reads of old data and keeps up with new writes *)
  let fresh = Option.get (Myraft.Cluster.server cluster "mysql4") in
  Alcotest.(check (option string)) "old row present" (Some "v")
    (Storage.Engine.get (Myraft.Server.storage fresh) ~table:"t" ~key:"b0-3");
  ignore (Helpers.write_n ~prefix:"after" cluster 5);
  Myraft.Cluster.run_for cluster (3.0 *. s);
  Alcotest.(check (option string)) "new row replicated" (Some "v")
    (Storage.Engine.get (Myraft.Server.storage fresh) ~table:"t" ~key:"after3")

let suites =
  [
    ( "downstream.cdc",
      [
        Alcotest.test_case "streams committed txns" `Quick test_cdc_streams_committed_txns;
        Alcotest.test_case "exactly-once across failover" `Quick
          test_cdc_survives_failover_no_dups;
        Alcotest.test_case "never streams truncated txns" `Quick
          test_cdc_never_streams_truncated_txn;
      ] );
    ( "downstream.backup",
      [
        Alcotest.test_case "take + verify roundtrip" `Quick test_backup_roundtrip;
        Alcotest.test_case "restore seeds a fresh server" `Quick
          test_restore_seeds_fresh_server;
        Alcotest.test_case "member replacement after purge" `Quick
          test_replace_member_after_purge_needs_backup;
      ] );
  ]
