(* Shadow testing (§5.1): run a production-representative workload while
   continuously injecting failures — repeated leader crashes and repeated
   graceful transfers — and continuously checking engine checksums across
   the ring for correctness.

     dune exec examples/shadow_testing.exe *)

let s = Sim.Engine.s

let members () =
  List.concat_map
    (fun i ->
      [
        Myraft.Cluster.mysql (Printf.sprintf "mysql%d" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%da" i) (Printf.sprintf "r%d" i);
        Myraft.Cluster.logtailer (Printf.sprintf "lt%db" i) (Printf.sprintf "r%d" i);
      ])
    [ 1; 2; 3 ]

let run_campaign ~kind ~label ~rounds =
  Printf.printf "\n--- %s campaign (%d injections) ---\n%!" label rounds;
  let cluster =
    Myraft.Cluster.create ~seed:77 ~replicaset:"shadow" ~members:(members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  let backend = Workload.Backend.myraft cluster in
  let load =
    Workload.Generator.create ~backend ~client_id:"shadow-load" ~region:"r1"
      ~client_latency:(300.0 *. Sim.Engine.us) ~write_timeout:(10.0 *. s) ()
  in
  Workload.Generator.start_open_loop load ~rate_per_s:150.0;
  let injector =
    Workload.Failure_injection.start cluster ~kind ~interval:(15.0 *. s)
      ~restart_after:(5.0 *. s)
  in
  let checks_failed = ref 0 in
  let checks_run = ref 0 in
  for _ = 1 to rounds do
    Myraft.Cluster.run_for cluster (15.0 *. s);
    incr checks_run;
    match Workload.Failure_injection.consistency_check cluster with
    | Ok _ -> ()
    | Error e ->
      incr checks_failed;
      Printf.printf "  !! consistency check failed: %s\n%!" e
  done;
  Workload.Failure_injection.stop injector;
  Workload.Generator.stop load;
  (* quiesce and do the final strict check *)
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
         Myraft.Cluster.primary cluster <> None));
  Myraft.Cluster.run_for cluster (10.0 *. s);
  Printf.printf "  injections: %d, checksum checks: %d (%d failed)\n"
    (Workload.Failure_injection.injections injector)
    !checks_run !checks_failed;
  Printf.printf "  workload: %s\n" (Workload.Generator.summary load);
  (match Workload.Failure_injection.consistency_check cluster with
  | Ok n -> Printf.printf "  final consistency: all live engines identical at %d txns\n" n
  | Error e -> Printf.printf "  final consistency FAILED: %s\n" e);
  !checks_failed

let () =
  print_endline "== MyShadow-style failure-injection testing ==";
  let f1 =
    run_campaign ~kind:Workload.Failure_injection.Crash_leader ~label:"failure injection"
      ~rounds:6
  in
  let f2 =
    run_campaign ~kind:Workload.Failure_injection.Graceful_transfer
      ~label:"functional (transfer)" ~rounds:6
  in
  if f1 + f2 = 0 then print_endline "\nall correctness checks passed."
  else Printf.printf "\n%d correctness check(s) failed!\n" (f1 + f2)
