(* Failover tour: a multi-region FlexiRaft ring under live traffic.
   Crash the primary and narrate the automatic failover — failure
   detection by missed heartbeats, leader election (possibly via an
   interim logtailer leader), promotion orchestration, and the measured
   client-side downtime.

     dune exec examples/failover_tour.exe *)

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
    Myraft.Cluster.mysql ~voter:false "learner1" "r2";
  ]

let () =
  print_endline "== MyRaft failover tour ==";
  let cluster =
    Myraft.Cluster.create ~seed:17 ~echo_trace:true ~replicaset:"tour"
      ~members:(members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  Printf.printf "\nring after bootstrap:\n%s\n\n" (Myraft.Cluster.describe cluster);

  (* background load + availability probe *)
  let backend = Workload.Backend.myraft cluster in
  let load =
    Workload.Generator.create ~backend ~client_id:"app" ~region:"r1"
      ~client_latency:(200.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop load ~rate_per_s:200.0;
  let probe = Myraft.Availability.start cluster ~client_id:"probe" in
  Myraft.Cluster.run_for cluster (3.0 *. s);

  Printf.printf "\n>>> killing the primary (mysql1) at t=%.1fs <<<\n\n"
    (Myraft.Cluster.now cluster /. s);
  let crash_at = Myraft.Cluster.now cluster in
  Myraft.Cluster.crash cluster "mysql1";

  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(60.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.run_for cluster (3.0 *. s);
  let end_at = Myraft.Cluster.now cluster in
  Workload.Generator.stop load;
  Myraft.Availability.stop probe;

  let downtime = Myraft.Availability.max_downtime probe ~start_time:crash_at ~end_time:end_at in
  Printf.printf "\nring after failover:\n%s\n" (Myraft.Cluster.describe cluster);
  (match Myraft.Cluster.tailer cluster "lt1a" with
  | Some lt when Myraft.Logtailer.interim_leaderships lt > 0 ->
    print_endline "(lt1a won an interim leadership and handed off, §2.2)"
  | _ -> ());
  Printf.printf
    "\nmeasured client-side write downtime: %.0f ms\n\
     (detection ~1.5s from 3 missed 500ms heartbeats + election + promotion)\n"
    (downtime /. ms);
  Printf.printf "load summary: %s\n" (Workload.Generator.summary load);

  (* the crashed node rejoins as a replica and converges *)
  print_endline "\nrestarting mysql1; it rejoins as a replica...";
  Myraft.Cluster.restart cluster "mysql1";
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.server cluster "mysql1" with
         | Some srv ->
           Myraft.Server.role srv = Myraft.Server.Replica
           && not (Raft.Node.is_leader (Myraft.Server.raft srv))
         | None -> false));
  Myraft.Cluster.run_for cluster (5.0 *. s);
  Printf.printf "\nfinal ring:\n%s\n" (Myraft.Cluster.describe cluster);
  match Workload.Failure_injection.consistency_check cluster with
  | Ok n -> Printf.printf "\nconsistency check: all engines identical at %d txns\n" n
  | Error e -> Printf.printf "\nconsistency check FAILED: %s\n" e
