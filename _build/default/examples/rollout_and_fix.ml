(* Operations tour: roll a replicaset out from semi-sync to MyRaft with
   enable-raft (§5.2), replace a failed member with automation (§2.2),
   then shatter the FlexiRaft data quorum and restore availability with
   Quorum Fixer (§5.3).

     dune exec examples/rollout_and_fix.exe *)

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let members () =
  [
    Myraft.Cluster.mysql "mysql1" "r1";
    Myraft.Cluster.logtailer "lt1a" "r1";
    Myraft.Cluster.logtailer "lt1b" "r1";
    Myraft.Cluster.mysql "mysql2" "r2";
    Myraft.Cluster.logtailer "lt2a" "r2";
    Myraft.Cluster.logtailer "lt2b" "r2";
  ]

let () =
  print_endline "== enable-raft rollout + Quorum Fixer ==";

  (* A semi-sync replicaset serving traffic. *)
  let ss =
    Semisync.Cluster.create ~seed:9 ~replicaset:"rs42" ~members:(members ()) ()
  in
  Semisync.Cluster.bootstrap ss ~leader_id:"mysql1";
  let backend = Workload.Backend.semisync ss in
  let load =
    Workload.Generator.create ~backend ~client_id:"app" ~region:"r1"
      ~client_latency:(200.0 *. Sim.Engine.us) ()
  in
  Workload.Generator.start_open_loop load ~rate_per_s:300.0;
  Semisync.Cluster.run_for ss (5.0 *. s);
  Workload.Generator.stop load;
  Semisync.Cluster.run_for ss (1.0 *. s);
  Printf.printf "\nsemi-sync replicaset before rollout:\n%s\n"
    (Semisync.Cluster.describe ss);
  Printf.printf "workload: %s\n" (Workload.Generator.summary load);

  (* enable-raft: lock, safety checks, plugin load, stop writes + catch
     up + raft bootstrap, publish. *)
  print_endline "\nrunning enable-raft...";
  let locks = Control.Lock_service.create (Semisync.Cluster.engine ss) in
  (match Control.Enable_raft.run ~members:(members ()) ~lock_service:locks ss with
  | Error e -> failwith ("enable-raft failed: " ^ e)
  | Ok (cluster, report) ->
    List.iter
      (fun (step, duration) -> Printf.printf "  step %-16s %8.0f ms\n" step (duration /. ms))
      report.Control.Enable_raft.steps;
    Printf.printf "  migrated %d transactions; write unavailability %.1f s\n"
      report.Control.Enable_raft.transactions_migrated
      (report.Control.Enable_raft.write_unavailability_us /. s);
    Printf.printf "\nMyRaft replicaset after rollout:\n%s\n" (Myraft.Cluster.describe cluster);

    (* Automation replaces a failed logtailer (§2.2): remove + allocate +
       AddMember, one change at a time. *)
    print_endline "\nlt1b fails; automation replaces it...";
    Myraft.Cluster.crash cluster "lt1b";
    Myraft.Cluster.run_for cluster (2.0 *. s);
    (match Control.Automation.replace_member cluster ~dead:"lt1b" ~replacement_id:"lt1c" with
    | Ok r ->
      Printf.printf "  replaced %s with %s in %.0f ms\n" r.Control.Automation.removed
        r.Control.Automation.added
        (r.Control.Automation.duration_us /. ms)
    | Error e -> Printf.printf "  replacement failed: %s\n" e);

    (* Shatter the data quorum: the leader's region loses both live
       logtailers at once (correlated failure). *)
    print_endline "\nshattering the quorum: crashing lt1a and lt1c...";
    Myraft.Cluster.crash cluster "lt1a";
    Myraft.Cluster.crash cluster "lt1c";
    (* the leader also dies; no election can succeed with r1 dark *)
    Myraft.Cluster.crash cluster "mysql1";
    Myraft.Cluster.run_for cluster (10.0 *. s);
    Printf.printf "  leader after 10s without quorum: %s\n"
      (Option.value ~default:"NONE (shattered quorum)"
         (Myraft.Cluster.raft_leader cluster));

    (* Quorum Fixer: pick the longest healthy log, force the election
       quorum, promote, reset. *)
    print_endline "\nrunning Quorum Fixer...";
    (match Control.Quorum_fixer.run cluster with
    | Ok r ->
      Printf.printf "  chose %s (last opid %s) among %d healthy; fixed in %.0f ms\n"
        r.Control.Quorum_fixer.chosen
        (Binlog.Opid.to_string r.Control.Quorum_fixer.chosen_last_opid)
        r.Control.Quorum_fixer.healthy_members
        (r.Control.Quorum_fixer.duration_us /. ms)
    | Error e -> Printf.printf "  quorum fixer refused: %s\n" e);
    ignore
      (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
           Myraft.Cluster.primary cluster <> None));
    Printf.printf "\nfinal ring:\n%s\n" (Myraft.Cluster.describe cluster));
  print_endline "\ndone."
