examples/shadow_testing.ml: List Myraft Printf Sim Workload
