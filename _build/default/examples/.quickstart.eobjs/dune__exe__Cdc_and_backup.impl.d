examples/cdc_and_backup.ml: Binlog Control Downstream Myraft Option Printf Result Sim Storage
