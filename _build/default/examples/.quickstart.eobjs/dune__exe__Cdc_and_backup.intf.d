examples/cdc_and_backup.mli:
