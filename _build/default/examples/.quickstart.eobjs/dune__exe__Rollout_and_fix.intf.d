examples/rollout_and_fix.mli:
