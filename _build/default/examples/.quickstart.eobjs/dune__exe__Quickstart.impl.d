examples/quickstart.ml: Binlog List Myraft Option Printf Sim Storage
