examples/failover_tour.mli:
