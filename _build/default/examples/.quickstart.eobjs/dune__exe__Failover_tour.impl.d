examples/failover_tour.ml: Myraft Printf Raft Sim Workload
