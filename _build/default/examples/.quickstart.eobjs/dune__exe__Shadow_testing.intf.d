examples/shadow_testing.mli:
