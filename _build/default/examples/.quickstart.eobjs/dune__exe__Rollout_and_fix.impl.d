examples/rollout_and_fix.ml: Binlog Control List Myraft Option Printf Semisync Sim Workload
