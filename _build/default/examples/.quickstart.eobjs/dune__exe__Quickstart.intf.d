examples/quickstart.mli:
