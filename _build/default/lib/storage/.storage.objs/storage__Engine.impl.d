lib/storage/engine.ml: Binlog Hashtbl List Marshal Option
