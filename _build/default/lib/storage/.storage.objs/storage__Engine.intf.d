lib/storage/engine.mli: Binlog
