(* Quorum Fixer (§5.3): restores write availability after a "shattered
   quorum" — when a majority of the (small, FlexiRaft) data-commit quorum
   is unhealthy and no leader can win a normal election.

   Procedure, as in the paper:
   1. query the attempted writes / health of the ring (out-of-band);
   2. find the healthy entity with the longest log — it must become the
      leader (leader completeness by hand);
   3. forcibly relax the leader-election quorum on that entity and
      trigger an election it can win with its own vote;
   4. once it has been promoted, reset the quorum expectations.

   It runs in a conservative mode by default: it refuses to act when a
   leader still exists, when the ring looks healthy, or when the longest
   log cannot be determined.  [force] relaxes those checks. *)

type report = {
  chosen : string;
  chosen_last_opid : Binlog.Opid.t;
  healthy_members : int;
  duration_us : float;
}

let ms = Sim.Engine.ms

(* Longest-log rule across healthy members. *)
let find_longest_log cluster =
  let candidates =
    List.filter_map
      (fun id ->
        if Myraft.Cluster.is_crashed cluster id then None
        else
          match Myraft.Cluster.raft_of cluster id with
          | Some r when Raft.Node.is_voter r -> Some (Raft.Node.last_opid r, id)
          | _ -> None)
      (Myraft.Cluster.member_ids cluster)
  in
  match
    List.sort (fun (a, _) (b, _) -> Binlog.Opid.compare b a) candidates
  with
  | (opid, id) :: _ -> Some (id, opid, List.length candidates)
  | [] -> None

let run ?(force = false) ?(timeout = 30.0 *. Sim.Engine.s) cluster =
  let started = Myraft.Cluster.now cluster in
  (* Step 1: out-of-band health sweep (one RPC per member). *)
  Myraft.Cluster.run_for cluster
    (float_of_int (List.length (Myraft.Cluster.member_ids cluster)) *. 20.0 *. ms);
  if (not force) && Myraft.Cluster.raft_leader cluster <> None then
    Error "conservative mode: a leader already exists"
  else
    (* Step 2: choose the healthy entity with the longest log. *)
    match find_longest_log cluster with
    | None -> Error "no healthy voter found"
    | Some (chosen, chosen_last_opid, healthy_members) -> (
      match Myraft.Cluster.raft_of cluster chosen with
      | None -> Error "chosen node vanished"
      | Some raft ->
        (* Step 3: relax the election-quorum expectations across the ring
           and force an election on the chosen entity.  The relaxation
           must cover the whole promotion: if the chosen entity is a
           logtailer it will immediately hand leadership to a MySQL
           server, and that election could not win a normal quorum
           either. *)
        let healthy_rafts =
          List.filter_map
            (fun id ->
              if Myraft.Cluster.is_crashed cluster id then None
              else Myraft.Cluster.raft_of cluster id)
            (Myraft.Cluster.member_ids cluster)
        in
        List.iter (fun r -> Raft.Node.set_force_election_quorum r true) healthy_rafts;
        Raft.Node.trigger_election raft;
        let elected =
          Myraft.Cluster.run_until cluster ~timeout (fun () ->
              Myraft.Cluster.raft_leader cluster = Some chosen)
        in
        let promoted =
          elected
          && Myraft.Cluster.run_until cluster ~timeout (fun () ->
                 Myraft.Cluster.primary cluster <> None)
        in
        (* Step 4: after a successful promotion, reset the quorum
           expectations back to normal. *)
        List.iter (fun r -> Raft.Node.set_force_election_quorum r false) healthy_rafts;
        if not elected then Error "chosen entity failed to win even with relaxed quorum"
        else if not promoted then Error "no MySQL primary emerged after the forced election"
        else
          Ok
            {
              chosen;
              chosen_last_opid;
              healthy_members;
              duration_us = Myraft.Cluster.now cluster -. started;
            })
