(** Distributed lock service for control-plane tools (enable-raft holds
    a per-replicaset lock so no other automation races it, §5.2). *)

type t

val create : ?acquire_delay:float -> Sim.Engine.t -> t

val holder : t -> name:string -> string option

(** Attempt the lock; [k] receives the outcome after the acquisition
    round trip.  Re-entrant for the same owner. *)
val acquire : t -> name:string -> owner:string -> ((unit, string) result -> unit) -> unit

val release : t -> name:string -> owner:string -> (unit, string) result
