(* Distributed lock service used by control-plane tools (enable-raft
   holds a replicaset lock so no other automation races it, §5.2). *)

type t = {
  engine : Sim.Engine.t;
  holders : (string, string) Hashtbl.t; (* lock name -> holder *)
  acquire_delay : float;
}

let create ?(acquire_delay = 50.0 *. Sim.Engine.ms) engine =
  { engine; holders = Hashtbl.create 4; acquire_delay }

let holder t ~name = Hashtbl.find_opt t.holders name

(* Attempt to take the lock; calls [k] with the outcome after the
   acquisition round trip. *)
let acquire t ~name ~owner k =
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.acquire_delay (fun () ->
         match Hashtbl.find_opt t.holders name with
         | Some existing when existing <> owner -> k (Error ("lock held by " ^ existing))
         | _ ->
           Hashtbl.replace t.holders name owner;
           k (Ok ())))

let release t ~name ~owner =
  match Hashtbl.find_opt t.holders name with
  | Some existing when existing = owner ->
    Hashtbl.remove t.holders name;
    Ok ()
  | Some existing -> Error ("lock held by " ^ existing)
  | None -> Ok ()
