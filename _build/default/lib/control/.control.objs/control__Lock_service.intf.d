lib/control/lock_service.mli: Sim
