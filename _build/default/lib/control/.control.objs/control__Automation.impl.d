lib/control/automation.ml: Binlog Downstream List Myraft Raft Sim
