lib/control/quorum_fixer.mli: Binlog Myraft
