lib/control/enable_raft.mli: Lock_service Myraft Semisync
