lib/control/quorum_fixer.ml: Binlog List Myraft Raft Sim
