lib/control/lock_service.ml: Hashtbl Sim
