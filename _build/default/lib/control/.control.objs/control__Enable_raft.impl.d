lib/control/enable_raft.ml: Binlog List Lock_service Myraft Option Semisync Sim Storage
