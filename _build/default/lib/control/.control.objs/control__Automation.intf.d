lib/control/automation.mli: Downstream Myraft
