(** Quorum Fixer (§5.3): restores write availability after a "shattered
    quorum" — when a majority of the small FlexiRaft data-commit quorum
    is unhealthy and no leader can win a normal election.

    Procedure: query the ring out-of-band, pick the healthy entity with
    the longest log, forcibly relax the election-quorum expectations
    (ring-wide, covering the logtailer-to-MySQL handoff), trigger the
    election, then reset the expectations after a successful promotion.

    Conservative by default: refuses to act when a leader exists. *)

type report = {
  chosen : string;
  chosen_last_opid : Binlog.Opid.t;
  healthy_members : int;
  duration_us : float;
}

val find_longest_log : Myraft.Cluster.t -> (string * Binlog.Opid.t * int) option

val run : ?force:bool -> ?timeout:float -> Myraft.Cluster.t -> (report, string) result
