(** enable-raft (§5.2): converts a replicaset from semi-sync replication
    to MyRaft through the paper's five steps — hold the replicaset lock,
    safety checks, load the plugin + Raft config on every entity, stop
    writes / catch up / bootstrap Raft, publish to discovery.  Only the
    last phase incurs write unavailability ("usually a few seconds"),
    which is measured and reported. *)

type report = {
  steps : (string * float) list;  (** (step, virtual duration µs) *)
  write_unavailability_us : float;
  transactions_migrated : int;
}

(** Run the rollout; on success returns the converted MyRaft replicaset,
    seeded with the semi-sync primary's binlog (GTIDs preserved) and led
    by the same primary. *)
val run :
  ?params:Myraft.Params.t ->
  ?seed:int ->
  members:Myraft.Cluster.member_spec list ->
  lock_service:Lock_service.t ->
  Semisync.Cluster.t ->
  (Myraft.Cluster.t * report, string) result
