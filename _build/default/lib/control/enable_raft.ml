(* enable-raft (§5.2): the rollout tool that converts a replicaset from
   semi-sync replication to MyRaft.

   The tool's five steps are reproduced: (1) hold the replicaset's
   distributed lock, (2) safety checks, (3) load the plugin + Raft
   configuration on every entity, (4) stop client writes, wait until all
   replicas are caught up and consistent, start the Raft bootstrap, and
   (5) publish the new primary to service discovery (done by promotion
   orchestration itself).  Only step 4-5 incur write unavailability —
   "usually a few seconds" — which this implementation measures and
   reports.

   The converted replicaset is materialised as a fresh [Myraft.Cluster]
   seeded with the semi-sync primary's binlog: every committed
   transaction is replayed into each member's log and engine before Raft
   boots, preserving GTIDs (the property §3 calls out as essential to the
   migration). *)

type report = {
  steps : (string * float) list; (* (step, duration in us) *)
  write_unavailability_us : float;
  transactions_migrated : int;
}

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let seed_server_from_entries server entries =
  let log = Myraft.Server.log server in
  let storage = Myraft.Server.storage server in
  List.iter
    (fun entry ->
      Binlog.Log_store.append log entry;
      match Binlog.Entry.payload entry with
      | Binlog.Entry.Transaction { gtid; events } ->
        let writes =
          List.concat_map
            (fun ev ->
              match Binlog.Event.body ev with
              | Binlog.Event.Write_rows { table; ops } ->
                List.map (fun op -> (table, op)) ops
              | _ -> [])
            events
        in
        Storage.Engine.prepare storage ~gtid ~writes;
        Storage.Engine.commit_prepared storage ~gtid ~opid:(Binlog.Entry.opid entry)
      | _ -> ())
    entries

let seed_tailer_from_entries tailer entries =
  let log = Myraft.Logtailer.log tailer in
  List.iter (fun entry -> Binlog.Log_store.append log entry) entries

let run ?(params = Myraft.Params.default) ?(seed = 23) ~members ~lock_service
    (ss : Semisync.Cluster.t) =
  let steps = ref [] in
  let step name f =
    let t0 = Semisync.Cluster.now ss in
    let result = f () in
    steps := (name, Semisync.Cluster.now ss -. t0) :: !steps;
    result
  in
  (* Step 1: hold the distributed lock for the replicaset. *)
  let lock_ok = ref None in
  Lock_service.acquire lock_service ~name:(Semisync.Cluster.replicaset_name ss)
    ~owner:"enable-raft" (fun r -> lock_ok := Some r);
  ignore
    (Semisync.Cluster.run_until ss ~timeout:(5.0 *. s) (fun () -> !lock_ok <> None));
  match !lock_ok with
  | None -> Error "step 1 (lock): timeout"
  | Some (Error e) -> Error ("step 1 (lock): " ^ e)
  | Some (Ok ()) -> (
    (* Step 2: safety checks — refuse unhealthy replicasets. *)
    let healthy =
      step "safety-checks" (fun () ->
          Semisync.Cluster.run_for ss (100.0 *. ms);
          Semisync.Cluster.primary ss <> None
          && List.for_all
               (fun srv -> not (Semisync.Server.is_crashed srv))
               (Semisync.Cluster.servers ss))
    in
    if not healthy then Error "step 2 (safety): replicaset is not healthy"
    else begin
      let primary = Option.get (Semisync.Cluster.primary ss) in
      (* Step 3: load the plugin and Raft configuration on every entity
         (no write unavailability yet). *)
      step "load-plugin" (fun () ->
          Semisync.Cluster.run_for ss
            (float_of_int (List.length (Semisync.Cluster.member_ids ss)) *. 50.0 *. ms));
      (* Step 4: stop client writes, wait for all replicas to be caught
         up and consistent.  Unavailability starts here. *)
      let unavail_start = Semisync.Cluster.now ss in
      Semisync.Server.disable_writes primary;
      let caught_up () =
        Semisync.Server.pipeline_in_flight primary = 0
        && List.for_all
             (fun srv ->
               Semisync.Server.id srv = Semisync.Server.id primary
               || (Semisync.Server.last_seq srv = Semisync.Server.last_seq primary
                  && Semisync.Server.applied_seq srv = Semisync.Server.last_seq primary))
             (Semisync.Cluster.servers ss)
      in
      let ok =
        step "catch-up" (fun () ->
            Semisync.Cluster.run_until ss ~timeout:(30.0 *. s) caught_up)
      in
      if not ok then Error "step 4 (catch-up): replicas failed to converge"
      else begin
        let entries =
          List.filter Binlog.Entry.is_transaction
            (Binlog.Log_store.all_entries (Semisync.Server.log primary))
        in
        (* Raft bootstrap: build the MyRaft ring seeded with the migrated
           binlog, then elect the old primary. *)
        let cluster =
          Myraft.Cluster.create ~seed ~params
            ~replicaset:(Semisync.Cluster.replicaset_name ss) ~members ()
        in
        List.iter
          (fun srv -> seed_server_from_entries srv entries)
          (Myraft.Cluster.servers cluster);
        List.iter
          (fun tailer -> seed_tailer_from_entries tailer entries)
          (Myraft.Cluster.tailers cluster);
        let bootstrap_start = Myraft.Cluster.now cluster in
        Myraft.Cluster.bootstrap cluster ~leader_id:(Semisync.Server.id primary);
        let bootstrap_time = Myraft.Cluster.now cluster -. bootstrap_start in
        steps := ("raft-bootstrap", bootstrap_time) :: !steps;
        let write_unavailability_us =
          Semisync.Cluster.now ss -. unavail_start +. bootstrap_time
        in
        ignore
          (Lock_service.release lock_service
             ~name:(Semisync.Cluster.replicaset_name ss) ~owner:"enable-raft");
        Ok
          ( cluster,
            {
              steps = List.rev !steps;
              write_unavailability_us;
              transactions_migrated = List.length entries;
            } )
      end
    end)
