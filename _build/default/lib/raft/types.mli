(** Raft ring membership types — the role mapping of Table 1: a MySQL
    follower is a voter with a storage engine, a learner is a non-voter
    with an engine, a witness (logtailer) is a voter without one. *)

type node_id = string

type role = Leader | Follower | Candidate

val role_to_string : role -> string

type member_kind = Mysql_server | Logtailer

type member = {
  id : node_id;
  region : string;
  voter : bool;
  kind : member_kind;
}

val is_witness : member -> bool

val is_learner : member -> bool

type config = { members : member list }

val config_members : config -> member list

val find_member : config -> node_id -> member option

val is_member : config -> node_id -> bool

val voters : config -> member list

val voter_ids : config -> node_id list

val learners : config -> member list

val voters_in_region : config -> string -> member list

(** Regions hosting at least one voter, in member order. *)
val regions_with_voters : config -> string list

val member_ids : config -> node_id list

(** Config changes ride the log as opaque strings so the log layer stays
    independent of Raft. *)
val encode_config : config -> string

val decode_config : string -> config

val describe_member : member -> string

val describe_config : config -> string
