(** Quorum evaluation, including FlexiRaft's flexible commit quorums
    (§4.1).

    - [Majority]: classic Raft — majority of all voters for data commit
      and elections.
    - [Single_region_dynamic]: FlexiRaft's production mode — data commit
      needs a majority of the voters in the {e leader's} region; an
      election must intersect every possible past data quorum.
    - [Region_majorities]: a majority of regions, each by an in-region
      majority (grid-style), for consistency-over-latency applications.

    All functions are pure; the node supplies the vote/ack sets. *)

type mode = Majority | Single_region_dynamic | Region_majorities

val mode_to_string : mode -> string

val majority_of : int -> int

(** Does [acks] contain a majority of [members]? *)
val majority_satisfied : Types.member list -> Types.node_id list -> bool

val region_majority : Types.config -> region:string -> Types.node_id list -> bool

val all_region_majorities : Types.config -> Types.node_id list -> bool

val majority_of_region_majorities : Types.config -> Types.node_id list -> bool

(** Has the entry been acknowledged by enough voters, given the leader's
    region? *)
val data_quorum_satisfied :
  mode -> Types.config -> leader_region:string -> acks:Types.node_id list -> bool

(** The regions in which a candidate must win an in-region majority;
    [None] means the rule is not region-based.

    [last_leader] is the authoritative last known leader (term, region);
    [vote_constraint] is the FlexiRaft voting history — the highest-term
    candidate granted a vote.  A grant can only extend the requirement,
    never relax it: with no authoritative leader the requirement stays
    pessimistic (every region). *)
val required_election_regions :
  mode ->
  Types.config ->
  candidate_region:string ->
  last_leader:(int * string) option ->
  vote_constraint:(int * string) option ->
  string list option

val election_quorum_satisfied :
  mode ->
  Types.config ->
  candidate_region:string ->
  last_leader:(int * string) option ->
  vote_constraint:(int * string) option ->
  votes:Types.node_id list ->
  bool

(** Smallest number of voters whose acknowledgement can commit an
    entry. *)
val min_data_quorum_size : mode -> Types.config -> leader_region:string -> int
