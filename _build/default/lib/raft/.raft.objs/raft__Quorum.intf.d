lib/raft/quorum.mli: Types
