lib/raft/types.ml: Hashtbl List Marshal Option Printf String
