lib/raft/message.ml: Binlog List Printf String Types
