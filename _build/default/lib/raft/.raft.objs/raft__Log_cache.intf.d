lib/raft/log_cache.mli: Binlog
