lib/raft/types.mli:
