lib/raft/quorum.ml: List Types
