lib/raft/node.mli: Binlog Log_cache Message Quorum Sim Types
