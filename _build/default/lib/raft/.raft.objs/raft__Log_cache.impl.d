lib/raft/log_cache.ml: Binlog Hashtbl List
