lib/raft/node.ml: Binlog Hashtbl List Log_cache Message Option Printf Quorum Sim Types
