lib/raft/message.mli: Binlog Types
