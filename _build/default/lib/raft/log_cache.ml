(* Leader-side in-memory cache of recent log entries (§3.1, §3.4).

   The leader compresses and caches each transaction it appends so that
   replication to (mostly caught-up) followers never touches the log
   files.  When a follower has fallen far enough behind that the entries
   it needs have been evicted, the leader falls back to the log
   abstraction — "parsing historical binary log files" — which we surface
   as a [disk_reads] counter so tests can assert the fallback happened.

   Eviction is FIFO by index with a total-bytes budget, matching a cache
   over a strictly appended sequence. *)

type t = {
  entries : (int, Binlog.Entry.t) Hashtbl.t;
  mutable first_cached : int; (* lowest index still cached; 0 when empty *)
  mutable last_cached : int;
  mutable bytes : int;
  max_bytes : int;
  mutable disk_reads : int;
  mutable hits : int;
}

let create ?(max_bytes = 4 * 1024 * 1024) () =
  {
    entries = Hashtbl.create 1024;
    first_cached = 0;
    last_cached = 0;
    bytes = 0;
    max_bytes;
    disk_reads = 0;
    hits = 0;
  }

let evict_oldest t =
  match Hashtbl.find_opt t.entries t.first_cached with
  | Some e ->
    Hashtbl.remove t.entries t.first_cached;
    t.bytes <- t.bytes - Binlog.Entry.size e;
    t.first_cached <- t.first_cached + 1
  | None -> t.first_cached <- t.first_cached + 1

let put t entry =
  let index = Binlog.Entry.index entry in
  if t.first_cached = 0 then t.first_cached <- index;
  Hashtbl.replace t.entries index entry;
  t.last_cached <- max t.last_cached index;
  t.bytes <- t.bytes + Binlog.Entry.size entry;
  while t.bytes > t.max_bytes && t.first_cached < t.last_cached do
    evict_oldest t
  done

(* Drop cached entries at or above [index] (log truncation on the leader
   is impossible in Raft, but a demoted leader reuses the same cache). *)
let truncate_from t ~index =
  for i = index to t.last_cached do
    match Hashtbl.find_opt t.entries i with
    | Some e ->
      Hashtbl.remove t.entries i;
      t.bytes <- t.bytes - Binlog.Entry.size e
    | None -> ()
  done;
  if t.last_cached >= index then t.last_cached <- index - 1;
  if t.first_cached > t.last_cached then begin
    t.first_cached <- 0;
    t.last_cached <- 0;
    t.bytes <- 0
  end

(* Read [from_index, from_index+max_count) preferring the cache, falling
   back to [read_log] for the cold prefix. *)
let read t ~from_index ~max_count ~read_log =
  let rec collect idx n acc =
    if n = 0 then List.rev acc
    else
      match Hashtbl.find_opt t.entries idx with
      | Some e ->
        t.hits <- t.hits + 1;
        collect (idx + 1) (n - 1) (e :: acc)
      | None -> (
        match read_log idx with
        | Some e ->
          t.disk_reads <- t.disk_reads + 1;
          collect (idx + 1) (n - 1) (e :: acc)
        | None -> List.rev acc)
  in
  collect from_index max_count []

let contains t ~index = Hashtbl.mem t.entries index

let disk_reads t = t.disk_reads

let hits t = t.hits

let cached_bytes t = t.bytes
