(* Quorum evaluation, including FlexiRaft's flexible commit quorums (§4.1).

   Three modes:
   - [Majority]: classic Raft — majority of all voters for both data
     commit and leader election.
   - [Single_region_dynamic]: FlexiRaft's production mode.  The data
     commit quorum is a majority of the voters in the *leader's* region
     (leader self-vote + one of the two in-region logtailers, in the
     paper's topology).  The leader-election quorum must intersect every
     possible data quorum, which FlexiRaft achieves by requiring a
     majority in the candidate's own region *and* in the region of the
     last known leader; when no leader is known the candidate falls back
     to the pessimistic requirement of a majority in every region that
     hosts voters.
   - [Region_majorities]: multi-region commit quorum — a majority of
     regions, each satisfied by an in-region majority (grid-style);
     offered for applications choosing consistency over latency.

   All functions are pure; the node supplies the vote/ack sets. *)

type mode = Majority | Single_region_dynamic | Region_majorities

let mode_to_string = function
  | Majority -> "majority"
  | Single_region_dynamic -> "single-region-dynamic"
  | Region_majorities -> "region-majorities"

let majority_of n = (n / 2) + 1

(* Does [acks] contain a majority of [members]? *)
let majority_satisfied members acks =
  let n = List.length members in
  n > 0
  &&
  let got = List.length (List.filter (fun m -> List.mem m.Types.id acks) members) in
  got >= majority_of n

let region_majority config ~region acks =
  majority_satisfied (Types.voters_in_region config region) acks

let all_region_majorities config acks =
  List.for_all
    (fun region -> region_majority config ~region acks)
    (Types.regions_with_voters config)

let majority_of_region_majorities config acks =
  let regions = Types.regions_with_voters config in
  let satisfied = List.filter (fun r -> region_majority config ~region:r acks) regions in
  List.length satisfied >= majority_of (List.length regions)

(* Data commit quorum: has the entry been acknowledged by enough voters,
   given the leader's region? *)
let data_quorum_satisfied mode config ~leader_region ~acks =
  match mode with
  | Majority -> majority_satisfied (Types.voters config) acks
  | Single_region_dynamic -> region_majority config ~region:leader_region acks
  | Region_majorities -> majority_of_region_majorities config acks

(* The regions in which a candidate must obtain an in-region majority for
   its election to intersect all possible past data quorums.  [None]
   means the rule is not region-based (plain majority).

   Two kinds of knowledge feed the intersection requirement:
   - [last_leader]: the authoritative last known leader (term, region),
     learned from AppendEntries or from having been that leader — its
     region may hold committed data;
   - [vote_constraint]: the FlexiRaft voting history — the highest-term
     candidate this node (or any responding voter) has *granted a vote*
     to.  Such a candidate MAY have won, so when its term is newer than
     the authoritative leader's, its region must be intersected too.

   With no authoritative leader at all the requirement stays pessimistic
   (a majority in every region): a mere granted vote can never *relax*
   the requirement, only extend it — this keeps concurrent bootstrap
   candidacies in different regions from both winning. *)
let required_election_regions mode config ~candidate_region ~last_leader ~vote_constraint =
  match mode with
  | Majority -> None
  | Region_majorities -> None
  | Single_region_dynamic ->
    let all = Types.regions_with_voters config in
    (match last_leader with
    | Some (leader_term, leader_region) when List.mem leader_region all ->
      let extra =
        match vote_constraint with
        | Some (vote_term, vote_region)
          when vote_term > leader_term && List.mem vote_region all ->
          [ vote_region ]
        | _ -> []
      in
      Some (List.sort_uniq compare (candidate_region :: leader_region :: extra))
    | Some _ | None -> Some all (* pessimistic: majority everywhere *))

let election_quorum_satisfied mode config ~candidate_region ~last_leader ~vote_constraint
    ~votes =
  match mode with
  | Majority -> majority_satisfied (Types.voters config) votes
  | Region_majorities -> majority_of_region_majorities config votes
  | Single_region_dynamic ->
    (match
       required_election_regions mode config ~candidate_region ~last_leader
         ~vote_constraint
     with
    | Some regions -> List.for_all (fun r -> region_majority config ~region:r votes) regions
    | None -> assert false)

(* Smallest number of voters whose acknowledgement can commit an entry:
   reported by the latency evaluation to explain the quorum each mode
   waits for. *)
let min_data_quorum_size mode config ~leader_region =
  match mode with
  | Majority -> majority_of (List.length (Types.voters config))
  | Single_region_dynamic ->
    majority_of (List.length (Types.voters_in_region config leader_region))
  | Region_majorities ->
    let regions = Types.regions_with_voters config in
    let sizes =
      List.map
        (fun r -> majority_of (List.length (Types.voters_in_region config r)))
        regions
    in
    let sorted = List.sort compare sizes in
    let needed = majority_of (List.length regions) in
    List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < needed) sorted)
