(* Raft ring membership types.

   The role mapping of Table 1: a MySQL follower is a voter with a
   storage engine; a learner is a non-voter with an engine (non-failover
   replica); a witness (logtailer) is a voter without an engine. *)

type node_id = string

type role = Leader | Follower | Candidate

let role_to_string = function
  | Leader -> "leader"
  | Follower -> "follower"
  | Candidate -> "candidate"

type member_kind = Mysql_server | Logtailer

type member = {
  id : node_id;
  region : string;
  voter : bool;
  kind : member_kind;
}

(* A witness is a voter with no storage engine; a learner is a non-voting
   MySQL replica. *)
let is_witness m = m.kind = Logtailer

let is_learner m = (not m.voter) && m.kind = Mysql_server

type config = { members : member list }

let config_members c = c.members

let find_member c id = List.find_opt (fun m -> m.id = id) c.members

let is_member c id = Option.is_some (find_member c id)

let voters c = List.filter (fun m -> m.voter) c.members

let voter_ids c = List.map (fun m -> m.id) (voters c)

let learners c = List.filter is_learner c.members

let voters_in_region c region = List.filter (fun m -> m.region = region) (voters c)

let regions_with_voters c =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun m ->
      if m.voter && not (Hashtbl.mem seen m.region) then begin
        Hashtbl.replace seen m.region ();
        Some m.region
      end
      else None)
    c.members

let member_ids c = List.map (fun m -> m.id) c.members

(* Config changes are carried in the log as opaque strings so the log
   layer stays independent of Raft. *)
let encode_config c = Marshal.to_string c []

let decode_config s : config = Marshal.from_string s 0

let describe_member m =
  Printf.sprintf "%s@%s(%s%s)" m.id m.region
    (match m.kind with Mysql_server -> "mysql" | Logtailer -> "logtailer")
    (if m.voter then ",voter" else ",non-voter")

let describe_config c =
  String.concat ", " (List.map describe_member c.members)
