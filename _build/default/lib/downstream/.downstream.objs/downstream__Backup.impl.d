lib/downstream/backup.ml: Binlog Int32 List Myraft Printf Raft Storage
