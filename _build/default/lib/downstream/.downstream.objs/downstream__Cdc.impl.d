lib/downstream/cdc.ml: Binlog List Myraft Printf Raft Sim
