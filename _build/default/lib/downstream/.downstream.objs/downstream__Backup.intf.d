lib/downstream/backup.mli: Binlog Myraft
