lib/downstream/cdc.mli: Binlog Myraft
