(** Backup and restore (§3, §5.1): a consistent snapshot of a member's
    consensus-committed binlog prefix.  Restore replays it into a fresh
    node (engine rebuilt by applying row events) — also how replacement
    members are seeded when the ring's history has been purged (the
    snapshot-install role Raft delegates to the backup service). *)

type t

(** Snapshot a live member's committed prefix, verifying checksums.
    Fails on crashed sources, corrupt entries, or locally purged
    history. *)
val take : Myraft.Server.t -> (t, string) result

(** Assemble a backup from an ascending entry list starting at index 1
    (migration tooling that already holds the stream). *)
val of_entries : taken_from:string -> Binlog.Entry.t list -> t

val position : t -> Binlog.Opid.t

val taken_from : t -> string

val entry_count : t -> int

val gtid_executed : t -> Binlog.Gtid_set.t

(** Replay into a fresh (empty) MySQL server: seed log + engine. *)
val restore_into_server : t -> Myraft.Server.t -> (unit, string) result

(** Seed a fresh logtailer's log. *)
val restore_into_tailer : t -> Myraft.Logtailer.t -> (unit, string) result

(** §5.1-style consistency check of the backup against a live member. *)
val verify_against : t -> Myraft.Server.t -> (unit, string) result
