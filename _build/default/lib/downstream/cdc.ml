(* Change data capture (§3, §5.1): a downstream service that tails a
   MySQL member's binary log — one of the consumers whose existence made
   "keep the binlog format" a design requirement for MyRaft, and which
   Meta's shadow testing exercised alongside the database.

   Correctness contract: the CDC stream contains exactly the
   consensus-committed transactions, in OpId order, each GTID exactly
   once — across failovers, truncations, and re-attachments to different
   members.  The tailer achieves this by never reading past its source's
   Raft commit index (an entry below the commit marker can never be
   truncated), and by de-duplicating on GTID when it resumes. *)

type record = {
  opid : Binlog.Opid.t;
  gtid : Binlog.Gtid.t;
  table_ops : (string * Binlog.Event.row_op list) list;
}

type t = {
  cluster : Myraft.Cluster.t;
  poll_interval : float;
  mutable source : string; (* member currently tailed *)
  mutable next_index : int;
  mutable streamed : record list; (* newest first *)
  mutable seen : Binlog.Gtid_set.t;
  mutable duplicates_skipped : int;
  mutable running : bool;
  mutable reattachments : int;
}

let records t = List.rev t.streamed

let record_count t = List.length t.streamed

let seen_gtids t = t.seen

let duplicates_skipped t = t.duplicates_skipped

let reattachments t = t.reattachments

let source t = t.source

let stop t = t.running <- false

let emit t entry =
  match Binlog.Entry.payload entry with
  | Binlog.Entry.Transaction { gtid; events } ->
    if Binlog.Gtid_set.contains t.seen gtid then
      t.duplicates_skipped <- t.duplicates_skipped + 1
    else begin
      let table_ops =
        List.filter_map
          (fun ev ->
            match Binlog.Event.body ev with
            | Binlog.Event.Write_rows { table; ops } -> Some (table, ops)
            | _ -> None)
          events
      in
      t.seen <- Binlog.Gtid_set.add t.seen gtid;
      t.streamed <- { opid = Binlog.Entry.opid entry; gtid; table_ops } :: t.streamed
    end
  | Binlog.Entry.Noop | Binlog.Entry.Config_change _ | Binlog.Entry.Rotate_marker _ -> ()

let poll t =
  match Myraft.Cluster.server t.cluster t.source with
  | Some server when not (Myraft.Server.is_crashed server) ->
    (* Only consensus-committed entries are stable enough to stream. *)
    let commit = Raft.Node.commit_index (Myraft.Server.raft server) in
    let log = Myraft.Server.log server in
    let rec drain () =
      if t.next_index <= commit then
        match Binlog.Log_store.entry_at log t.next_index with
        | Some entry ->
          emit t entry;
          t.next_index <- t.next_index + 1;
          drain ()
        | None ->
          (* purged beneath us: skip forward (the data was already
             streamed before it became purge-eligible, or predates this
             tailer's attachment point) *)
          t.next_index <- t.next_index + 1;
          drain ()
    in
    drain ()
  | _ -> ()

(* Re-attach to another live member, resuming from the same log
   position; GTID de-duplication covers any overlap. *)
let reattach t ~source =
  t.source <- source;
  t.reattachments <- t.reattachments + 1

(* Attach to any live MySQL member when the current source is down. *)
let find_live_source t =
  List.find_opt
    (fun srv -> not (Myraft.Server.is_crashed srv))
    (Myraft.Cluster.servers t.cluster)

let start ?(poll_interval = 50.0 *. Sim.Engine.ms) ?(from_index = 1) ~source cluster =
  let t =
    {
      cluster;
      poll_interval;
      source;
      next_index = from_index;
      streamed = [];
      seen = Binlog.Gtid_set.empty;
      duplicates_skipped = 0;
      running = true;
      reattachments = 0;
    }
  in
  let engine = Myraft.Cluster.engine cluster in
  let rec tick () =
    if t.running then begin
      (match Myraft.Cluster.server cluster t.source with
      | Some srv when not (Myraft.Server.is_crashed srv) -> ()
      | _ -> (
        match find_live_source t with
        | Some srv -> reattach t ~source:(Myraft.Server.id srv)
        | None -> ()));
      poll t;
      ignore (Sim.Engine.schedule engine ~delay:t.poll_interval tick)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:t.poll_interval tick);
  t

(* Validation helper: the stream must be strictly ordered by OpId with
   no duplicate GTIDs. *)
let validate t =
  let rec check prev = function
    | [] -> Ok (record_count t)
    | r :: rest ->
      if Binlog.Opid.compare r.opid prev <= 0 then
        Error
          (Printf.sprintf "out of order: %s after %s"
             (Binlog.Opid.to_string r.opid) (Binlog.Opid.to_string prev))
      else check r.opid rest
  in
  check Binlog.Opid.zero (records t)
