(** Change data capture (§3, §5.1): a downstream tailer of a member's
    binary log.

    Contract: the stream contains exactly the consensus-committed
    transactions, in OpId order, each GTID once — across failovers,
    truncations and re-attachments.  The tailer never reads past its
    source's Raft commit index (entries below the marker cannot be
    truncated) and de-duplicates on GTID when it resumes. *)

type record = {
  opid : Binlog.Opid.t;
  gtid : Binlog.Gtid.t;
  table_ops : (string * Binlog.Event.row_op list) list;
}

type t

(** Attach to [source]; the tailer re-attaches to any live member if the
    source dies. *)
val start : ?poll_interval:float -> ?from_index:int -> source:string -> Myraft.Cluster.t -> t

val stop : t -> unit

(** Streamed records, oldest first. *)
val records : t -> record list

val record_count : t -> int

val seen_gtids : t -> Binlog.Gtid_set.t

val duplicates_skipped : t -> int

val reattachments : t -> int

val source : t -> string

(** Check strict OpId ordering; returns the record count. *)
val validate : t -> (int, string) result
