(* Service discovery: the registry clients consult to find the primary of
   a replicaset.  Publication takes (virtual) time — the last promotion
   orchestration step (§3.3 step 5) — so there is a window where clients
   still address the old primary; that window is part of what the
   downtime evaluation measures. *)

type t = {
  engine : Sim.Engine.t;
  primaries : (string, Sim.Topology.node_id) Hashtbl.t; (* replicaset -> primary *)
  mutable publications : (float * string * Sim.Topology.node_id) list;
}

let create engine = { engine; primaries = Hashtbl.create 4; publications = [] }

(* Record the role change after [delay] (the publish latency). *)
let publish_primary t ~replicaset ~primary ~delay =
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun () ->
         Hashtbl.replace t.primaries replicaset primary;
         t.publications <-
           (Sim.Engine.now t.engine, replicaset, primary) :: t.publications))

let primary_of t ~replicaset = Hashtbl.find_opt t.primaries replicaset

let publications t = List.rev t.publications
