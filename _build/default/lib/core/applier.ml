(* The replica's applier thread (§3.5).

   Raft writes incoming transactions to the relay log and signals the
   applier; the applier picks them up in log order, executes the RBR
   payload (preparing the transaction in the engine), and pushes it into
   the same three-stage commit pipeline used by the primary, where it
   waits for the consensus-commit marker before engine commit.

   [applied_index] is the highest log index whose effects are durably in
   the engine with nothing earlier missing — what promotion step 2 waits
   on to reach the no-op, and what positions the applier cursor after a
   role change (§3.3 demotion step 5). *)

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  mutable running : bool;
  mutable queue : Binlog.Entry.t Queue.t;
  mutable busy : bool;
  mutable applied_index : int;
  mutable next_expected : int; (* next log index to enqueue *)
  mutable applied_txns : int;
  process : Binlog.Entry.t -> on_done:(ok:bool -> unit) -> unit;
    (* prepare + pipeline submission; [on_done] fires after engine commit *)
}

let create ~engine ~params ~process =
  {
    engine;
    params;
    running = false;
    queue = Queue.create ();
    busy = false;
    applied_index = 0;
    next_expected = 1;
    applied_txns = 0;
    process;
  }

let applied_index t = t.applied_index

let applied_txns t = t.applied_txns

let is_running t = t.running

(* Execute entries serially (the applier thread), but do NOT wait for
   engine commit before picking up the next entry: the commit pipeline is
   FIFO, so completions arrive in order and [applied_index] stays a
   prefix watermark.  This is what lets a replica keep up with a
   group-committing primary. *)
let rec work t =
  if t.running && not t.busy then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some entry ->
      t.busy <- true;
      let index = Binlog.Entry.index entry in
      let cost =
        match Binlog.Entry.payload entry with
        | Binlog.Entry.Transaction _ -> t.params.Params.apply_per_txn_us
        | _ -> 1.0 (* noop / rotate / config: nothing to execute *)
      in
      ignore
        (Sim.Engine.schedule t.engine ~delay:cost (fun () ->
             let generation_running = t.running in
             t.process entry ~on_done:(fun ~ok ->
                 if ok && t.running && generation_running then begin
                   t.applied_index <- max t.applied_index index;
                   if Binlog.Entry.is_transaction entry then
                     t.applied_txns <- t.applied_txns + 1
                 end);
             t.busy <- false;
             work t))

(* Raft signal: new entries are in the relay log. *)
let signal t entries =
  if t.running then begin
    List.iter
      (fun e ->
        if Binlog.Entry.index e >= t.next_expected then begin
          Queue.add e t.queue;
          t.next_expected <- Binlog.Entry.index e + 1
        end)
      entries;
    ignore (Sim.Engine.schedule t.engine ~delay:t.params.Params.applier_wakeup_us (fun () -> work t))
  end

(* Truncation: drop queued entries at/above the truncation point and
   rewind the cursor. *)
let handle_truncation t ~from_index =
  let keep = Queue.create () in
  Queue.iter
    (fun e -> if Binlog.Entry.index e < from_index then Queue.add e keep)
    t.queue;
  t.queue <- keep;
  if t.next_expected > from_index then t.next_expected <- from_index;
  if t.applied_index >= from_index then t.applied_index <- from_index - 1

(* Start (or restart) the applier with its cursor positioned from the
   engine's recovery point; [backlog] is the relay-log suffix after that
   point. *)
let start t ~from_index ~backlog =
  t.running <- true;
  Queue.clear t.queue;
  t.busy <- false;
  t.applied_index <- from_index - 1;
  t.next_expected <- from_index;
  signal t backlog

let stop t =
  t.running <- false;
  Queue.clear t.queue;
  t.busy <- false

let queue_length t = Queue.length t.queue
