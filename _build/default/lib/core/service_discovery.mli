(** Service discovery: the registry clients consult to find a
    replicaset's primary.  Publication takes virtual time (§3.3 step 5),
    so there is a client-visible window after every role change — part
    of what the downtime evaluation measures. *)

type t

val create : Sim.Engine.t -> t

(** Record the role change after [delay] (the publish latency). *)
val publish_primary : t -> replicaset:string -> primary:Sim.Topology.node_id -> delay:float -> unit

val primary_of : t -> replicaset:string -> Sim.Topology.node_id option

(** (time, replicaset, primary) publication history, oldest first. *)
val publications : t -> (float * string * Sim.Topology.node_id) list
