(* Everything that travels on a MyRaft replicaset's network: Raft RPCs
   between ring members plus client write traffic to the primary. *)

type write_request = {
  write_id : int;
  table : string;
  ops : Binlog.Event.row_op list;
  client : Sim.Topology.node_id;
}

type write_outcome =
  | Committed
  | Rejected of string (* not primary / read-only / lock conflict *)

type t =
  | Raft_msg of Raft.Message.t
  | Write_request of write_request
  | Write_reply of { write_id : int; outcome : write_outcome }

(* Wire size in bytes for bandwidth accounting. *)
let size = function
  | Raft_msg m -> Raft.Message.size m
  | Write_request { ops; table; _ } ->
    48 + String.length table
    + List.fold_left (fun acc op -> acc + Binlog.Event.row_op_size op) 0 ops
  | Write_reply _ -> 32
