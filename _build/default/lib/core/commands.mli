(** The MySQL replication command surface under MyRaft (§3): SHOW
    BINARY LOGS / MASTER STATUS / REPLICA STATUS, FLUSH and PURGE keep
    working; CHANGE MASTER TO and RESET are disallowed because Raft owns
    replication. *)

type result =
  | Rows of { header : string list; rows : string list list }
  | Ok_affected of string
  | Disallowed of string

val render : result -> string

val show_binary_logs : Server.t -> result

val show_master_status : Server.t -> result

val show_replica_status : Server.t -> result

val flush_binary_logs : Server.t -> result

val purge_binary_logs : Server.t -> result

val change_master_to : Server.t -> result

val reset_master : Server.t -> result

val reset_replication : Server.t -> result
