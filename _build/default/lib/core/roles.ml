(* Table 1: roles in MyRaft compared to the prior setup. *)

type row = {
  myraft_role : string;
  entity : string;
  database_role : string;
  in_region_logtailers : string;
  prior_setup_role : string;
  has_database : string;
  serves_reads : string;
  serves_writes : string;
}

let rows =
  [
    {
      myraft_role = "Leader";
      entity = "MySQL";
      database_role = "Primary";
      in_region_logtailers = "Yes";
      prior_setup_role = "Primary";
      has_database = "Yes";
      serves_reads = "Yes";
      serves_writes = "Yes";
    };
    {
      myraft_role = "Follower";
      entity = "MySQL";
      database_role = "Failover replica";
      in_region_logtailers = "Yes";
      prior_setup_role = "Replica";
      has_database = "Yes";
      serves_reads = "Yes";
      serves_writes = "No";
    };
    {
      myraft_role = "Learner";
      entity = "MySQL";
      database_role = "Non-failover replica";
      in_region_logtailers = "No";
      prior_setup_role = "Replica";
      has_database = "Yes";
      serves_reads = "Yes";
      serves_writes = "No";
    };
    {
      myraft_role = "Witness";
      entity = "Logtailer";
      database_role = "N/A";
      in_region_logtailers = "Yes";
      prior_setup_role = "Semi-Sync Acker";
      has_database = "No";
      serves_reads = "No";
      serves_writes = "No";
    };
  ]

(* The role a member of a running ring maps to in Table 1's terms. *)
let classify (member : Raft.Types.member) ~is_leader =
  match (member.Raft.Types.kind, member.Raft.Types.voter, is_leader) with
  | Raft.Types.Logtailer, _, _ -> "Witness"
  | Raft.Types.Mysql_server, true, true -> "Leader"
  | Raft.Types.Mysql_server, true, false -> "Follower"
  | Raft.Types.Mysql_server, false, _ -> "Learner"

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-9s %-10s %-20s %-11s %-16s %-8s %-5s %-6s\n" "MyRaft" "Entity"
       "Database Role" "w/InRegLTs" "Prior Setup" "Database" "Read" "Write");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-9s %-10s %-20s %-11s %-16s %-8s %-5s %-6s\n" r.myraft_role
           r.entity r.database_role r.in_region_logtailers r.prior_setup_role
           r.has_database r.serves_reads r.serves_writes))
    rows;
  Buffer.contents buf
