(** Table 1: roles in MyRaft compared to the prior setup. *)

type row = {
  myraft_role : string;
  entity : string;
  database_role : string;
  in_region_logtailers : string;
  prior_setup_role : string;
  has_database : string;
  serves_reads : string;
  serves_writes : string;
}

val rows : row list

(** The Table-1 role a running member maps to. *)
val classify : Raft.Types.member -> is_leader:bool -> string

(** Render the table. *)
val render : unit -> string
