(** Client-side availability probe for a MyRaft replicaset: repeatedly
    writes through service discovery; downtime is the largest gap
    between consecutive successful commits (Table 2's metric). *)

type t

val start :
  ?region:string ->
  ?probe_interval:float ->
  ?write_timeout:float ->
  ?client_latency:float ->
  Cluster.t ->
  client_id:string ->
  t

val stop : t -> unit

val successes : t -> int

val failures : t -> int

(** Largest success gap in the window, microseconds. *)
val max_downtime : t -> start_time:float -> end_time:float -> float
