(* The MySQL replication command surface under MyRaft (§3).

   "MySQL commands like SHOW BINARY LOGS, SHOW MASTER STATUS, SHOW
   REPLICA STATUS, PURGE LOGS TO and FLUSH BINARY LOGS continue to work
   in MyRaft.  Some replication commands like CHANGE MASTER TO, RESET
   MASTER and RESET REPLICATION were adjusted or disallowed because
   these operations are handled by Raft." *)

type result =
  | Rows of { header : string list; rows : string list list }
  | Ok_affected of string
  | Disallowed of string

let render = function
  | Rows { header; rows } ->
    let line cells = "| " ^ String.concat " | " cells ^ " |" in
    String.concat "\n" (line header :: List.map line rows)
  | Ok_affected msg -> "Query OK: " ^ msg
  | Disallowed msg -> "ERROR: " ^ msg

(* SHOW BINARY LOGS: the log file inventory, as maintained in the index
   file. *)
let show_binary_logs server =
  Rows
    {
      header = [ "Log_name"; "File_size"; "Entry_count" ];
      rows =
        List.map
          (fun (name, size, entries) ->
            [ name; string_of_int size; string_of_int entries ])
          (Binlog.Log_store.file_list (Server.log server));
    }

(* SHOW MASTER STATUS: current file, position (index), and executed GTID
   set. *)
let show_master_status server =
  let log = Server.log server in
  let file =
    match List.rev (Binlog.Log_store.file_names log) with f :: _ -> f | [] -> "<none>"
  in
  Rows
    {
      header = [ "File"; "Position"; "Executed_Gtid_Set" ];
      rows =
        [
          [
            file;
            string_of_int (Binlog.Log_store.last_index log);
            Binlog.Gtid_set.to_string (Server.gtid_executed server);
          ];
        ];
    }

(* SHOW REPLICA STATUS: role, leader, applier position and lag — the
   fields our automation actually reads. *)
let show_replica_status server =
  let raft = Server.raft server in
  let applied =
    if Server.role server = Server.Replica then Applier.applied_index (Server.applier server)
    else Raft.Node.commit_index raft
  in
  Rows
    {
      header =
        [ "Role"; "Raft_Role"; "Raft_Term"; "Leader"; "Commit_Index"; "Applied_Index"; "Lag" ];
      rows =
        [
          [
            Server.role_to_string (Server.role server);
            Raft.Types.role_to_string (Raft.Node.role raft);
            string_of_int (Raft.Node.current_term raft);
            Option.value (Raft.Node.leader_id raft) ~default:"<unknown>";
            string_of_int (Raft.Node.commit_index raft);
            string_of_int applied;
            string_of_int (max 0 (Raft.Node.commit_index raft - applied));
          ];
        ];
    }

let flush_binary_logs server =
  match Server.flush_binary_logs server with
  | Ok () -> Ok_affected "rotate event submitted for consensus commit"
  | Error e -> Disallowed e

let purge_binary_logs server =
  let purged = Server.purge_binary_logs server in
  Ok_affected (Printf.sprintf "%d file(s) purged (Raft region watermarks consulted)" purged)

(* Replication topology is the Raft ring's business now. *)
let change_master_to _server =
  Disallowed "CHANGE MASTER TO is disallowed: replication topology is managed by Raft"

let reset_master _server =
  Disallowed "RESET MASTER is disallowed: the binary log is Raft's replicated log"

let reset_replication _server =
  Disallowed "RESET REPLICA is disallowed: replication state is managed by Raft"
