lib/core/applier.mli: Binlog Params Sim
