lib/core/pipeline.ml: List Params Sim
