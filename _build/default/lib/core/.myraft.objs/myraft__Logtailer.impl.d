lib/core/logtailer.ml: Binlog List Option Params Raft Sim Wire
