lib/core/commands.ml: Applier Binlog List Option Printf Raft Server String
