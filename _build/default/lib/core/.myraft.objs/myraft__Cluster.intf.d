lib/core/cluster.mli: Logtailer Params Raft Server Service_discovery Sim Wire
