lib/core/applier.ml: Binlog List Params Queue Sim
