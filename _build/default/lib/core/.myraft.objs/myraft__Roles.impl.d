lib/core/roles.ml: Buffer List Printf Raft
