lib/core/commands.mli: Server
