lib/core/pipeline.mli: Params Sim
