lib/core/logtailer.mli: Binlog Params Raft Sim Wire
