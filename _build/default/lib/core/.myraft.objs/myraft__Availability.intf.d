lib/core/availability.mli: Cluster
