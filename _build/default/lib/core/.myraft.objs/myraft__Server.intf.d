lib/core/server.mli: Applier Binlog Params Pipeline Raft Service_discovery Sim Storage Wire
