lib/core/wire.mli: Binlog Raft Sim
