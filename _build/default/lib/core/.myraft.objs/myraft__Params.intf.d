lib/core/params.mli: Raft
