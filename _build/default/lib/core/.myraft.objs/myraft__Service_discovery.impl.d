lib/core/service_discovery.ml: Hashtbl List Sim
