lib/core/server.ml: Applier Binlog Int64 List Params Pipeline Printf Raft Service_discovery Sim Storage Wire
