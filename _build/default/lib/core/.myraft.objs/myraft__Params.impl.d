lib/core/params.ml: Raft
