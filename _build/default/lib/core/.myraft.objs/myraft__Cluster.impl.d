lib/core/cluster.ml: Hashtbl List Logtailer Params Printf Raft Server Service_discovery Sim String Wire
