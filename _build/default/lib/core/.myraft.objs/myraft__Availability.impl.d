lib/core/availability.ml: Binlog Cluster Hashtbl List Printf Service_discovery Sim Wire
