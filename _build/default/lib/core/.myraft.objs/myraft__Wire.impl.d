lib/core/wire.ml: Binlog List Raft Sim String
