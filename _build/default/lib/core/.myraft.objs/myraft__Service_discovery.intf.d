lib/core/service_discovery.mli: Sim
