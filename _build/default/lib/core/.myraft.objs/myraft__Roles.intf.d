lib/core/roles.mli: Raft
