(* Growable array (OCaml 5.1 predates Stdlib.Dynarray).

   Supports O(1) push/pop at the back and O(1) random access; used for log
   entry storage where the Raft index maps directly to a vector slot. *)

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; size = 0; dummy }

let length t = t.size

let is_empty t = t.size = 0

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let get_opt t i = if i < 0 || i >= t.size then None else Some t.data.(i)

let set t i v =
  if i < 0 || i >= t.size then invalid_arg "Vec.set: out of bounds";
  t.data.(i) <- v

let push t v =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let last_opt t = if t.size = 0 then None else Some t.data.(t.size - 1)

(* Shrink to [n] elements, returning the removed tail (front-to-back order). *)
let truncate_to t n =
  if n < 0 || n > t.size then invalid_arg "Vec.truncate_to";
  let removed = Array.to_list (Array.sub t.data n (t.size - n)) in
  for i = n to t.size - 1 do
    t.data.(i) <- t.dummy
  done;
  t.size <- n;
  removed

let iter t f =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri t f =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold t ~init f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))

(* Elements in [lo, hi) as a list. *)
let slice t ~lo ~hi =
  let lo = max 0 lo and hi = min t.size hi in
  if hi <= lo then [] else List.init (hi - lo) (fun i -> t.data.(lo + i))
