(** Growable array (OCaml 5.1 predates Stdlib.Dynarray): O(1) push and
    random access; log entry storage maps Raft indexes to slots. *)

type 'a t

val create : dummy:'a -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Raises [Invalid_argument] out of bounds. *)
val get : 'a t -> int -> 'a

val get_opt : 'a t -> int -> 'a option

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val last_opt : 'a t -> 'a option

(** Shrink to [n] elements, returning the removed tail in order. *)
val truncate_to : 'a t -> int -> 'a list

val iter : 'a t -> ('a -> unit) -> unit

val iteri : 'a t -> (int -> 'a -> unit) -> unit

val fold : 'a t -> init:'b -> ('b -> 'a -> 'b) -> 'b

val to_list : 'a t -> 'a list

(** Elements in [lo, hi) as a list (clamped). *)
val slice : 'a t -> lo:int -> hi:int -> 'a list
