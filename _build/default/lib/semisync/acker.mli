(** A semi-sync acker: the prior-setup role of the in-region logtailer
    (Table 1).  Tails the primary's binlog into a local log and
    acknowledges receipt; the primary's commit pipeline waits for the
    first acker acknowledgement. *)

type t

val create :
  engine:Sim.Engine.t ->
  id:string ->
  region:string ->
  send:(dst:string -> Wire.t -> unit) ->
  trace:Sim.Trace.t ->
  unit ->
  t

val id : t -> string

val log : t -> Binlog.Log_store.t

val is_crashed : t -> bool

val acks_sent : t -> int

val last_seq : t -> int

val repoint : t -> new_upstream:string -> unit

val handle_message : t -> src:string -> Wire.t -> unit

val crash : t -> unit

val restart : t -> unit
