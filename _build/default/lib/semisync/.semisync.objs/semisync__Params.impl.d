lib/semisync/params.ml: Sim
