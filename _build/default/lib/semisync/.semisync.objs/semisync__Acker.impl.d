lib/semisync/acker.ml: Binlog Int32 List Sim Wire
