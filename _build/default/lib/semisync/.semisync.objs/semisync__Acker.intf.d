lib/semisync/acker.mli: Binlog Sim Wire
