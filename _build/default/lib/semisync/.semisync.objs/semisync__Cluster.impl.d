lib/semisync/cluster.ml: Acker Binlog Hashtbl List Myraft Option Orchestrator Params Printf Raft Server Sim String Wire
