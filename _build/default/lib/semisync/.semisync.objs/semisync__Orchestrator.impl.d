lib/semisync/orchestrator.ml: Acker Hashtbl List Myraft Params Server Sim Wire
