lib/semisync/wire.mli: Binlog
