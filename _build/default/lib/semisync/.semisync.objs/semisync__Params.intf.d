lib/semisync/params.mli:
