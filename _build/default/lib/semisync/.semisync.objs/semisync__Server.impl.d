lib/semisync/server.ml: Binlog Hashtbl Int64 List Myraft Params Queue Sim Storage Wire
