lib/semisync/cluster.mli: Acker Myraft Orchestrator Params Server Sim Wire
