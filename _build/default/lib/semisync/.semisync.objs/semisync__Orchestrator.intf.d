lib/semisync/orchestrator.mli: Acker Hashtbl Myraft Params Server Sim Wire
