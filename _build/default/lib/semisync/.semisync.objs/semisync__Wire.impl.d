lib/semisync/wire.ml: Binlog List String
