lib/semisync/server.mli: Binlog Myraft Params Sim Storage Wire
