(** The prior setup's external control plane (§1.1): health monitoring
    by pings over the simulated network, dead-primary failover with
    heavy-tailed automation delays, and graceful promotion — the
    operational behaviour Table 2 contrasts with Raft's in-server
    failover. *)

type ctx = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  params : Params.t;
  discovery : Myraft.Service_discovery.t;
  replicaset : string;
  orchestrator_id : string;
  send : dst:string -> Wire.t -> unit;
  servers : unit -> Server.t list;
  ackers : unit -> Acker.t list;
  peers_for : string -> (string * bool) list;
}

type t = {
  ctx : ctx;
  mutable current_primary : string;
  mutable misses : int;
  mutable next_ping : int;
  pending_pings : (int, Sim.Engine.handle) Hashtbl.t;
  mutable in_failover : bool;
  mutable monitoring : bool;
  mutable failovers : int;
  mutable promotions : int;
}

val create : ctx -> initial_primary:string -> t

val current_primary : t -> string

val failovers : t -> int

val promotions : t -> int

val handle_message : t -> src:string -> Wire.t -> unit

val start_monitoring : t -> unit

val stop_monitoring : t -> unit

(** Operator-initiated promotion: quiesce, wait catch-up, switch roles,
    repoint, publish.  [on_done] fires at completion. *)
val graceful_promotion : t -> target:string -> on_done:(unit -> unit) -> (unit, string) result
