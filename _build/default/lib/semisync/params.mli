(** Tunables of the prior setup: semi-sync shipping plus the external
    control plane whose heavy-tailed detection/remediation latency is
    what MyRaft's Table 2 beats by 24x.  All times in µs. *)

type t = {
  ship_interval : float;  (** periodic ship/retry cadence *)
  max_entries_per_ship : int;
  poll_interval : float;  (** orchestrator health-check period *)
  confirmations : int;  (** consecutive ping failures before failover *)
  ping_timeout : float;
  lock_delay_lo : float;
  lock_delay_hi : float;
  position_query_delay : float;  (** per-replica GTID position RPC *)
  remediation_mu : float;  (** lognormal automation/queueing overhead *)
  remediation_sigma : float;
  repoint_delay : float;  (** CHANGE MASTER TO on one replica *)
  publish_delay : float;
  catchup_poll : float;
  promotion_step_delay : float;
  promotion_overhead_mu : float;
  promotion_overhead_sigma : float;
}

val default : t
