(* Tunables of the prior setup: semi-sync shipping and, crucially, the
   *external* control plane whose detection and remediation latency is
   what MyRaft's evaluation (Table 2) beats by 24x.

   The orchestration model: a monitor pings the primary every
   [poll_interval] and declares it dead after [confirmations] consecutive
   failures; remediation then runs through automation whose duration is
   heavy-tailed (worker queues, retries, lock contention) — modelled as a
   lognormal on top of fixed per-step costs.  All times in µs. *)

type t = {
  (* replication *)
  ship_interval : float; (* periodic ship/retry cadence *)
  max_entries_per_ship : int;
  (* health monitoring *)
  poll_interval : float;
  confirmations : int;
  ping_timeout : float;
  (* failover automation *)
  lock_delay_lo : float; (* distributed lock acquisition *)
  lock_delay_hi : float;
  position_query_delay : float; (* per-replica GTID position RPC *)
  remediation_mu : float; (* lognormal of automation/queueing overhead *)
  remediation_sigma : float;
  repoint_delay : float; (* CHANGE MASTER TO on one replica *)
  publish_delay : float; (* service discovery update *)
  catchup_poll : float;
  (* graceful promotion *)
  promotion_step_delay : float; (* quiesce / switch role *)
  promotion_overhead_mu : float;
  promotion_overhead_sigma : float;
}

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let default =
  {
    ship_interval = 20.0 *. ms;
    max_entries_per_ship = 64;
    poll_interval = 10.0 *. s;
    confirmations = 3;
    ping_timeout = 2.0 *. s;
    lock_delay_lo = 0.5 *. s;
    lock_delay_hi = 2.0 *. s;
    position_query_delay = 100.0 *. ms;
    (* lognormal with median 18 s, sigma 0.9: mean ~27 s, p99 ~145 s *)
    remediation_mu = log (18.0 *. s);
    remediation_sigma = 0.9;
    repoint_delay = 150.0 *. ms;
    publish_delay = 200.0 *. ms;
    catchup_poll = 100.0 *. ms;
    promotion_step_delay = 120.0 *. ms;
    (* lognormal with median 0.55 s, sigma 0.45: mean ~0.6 s, p99 ~1.6 s *)
    promotion_overhead_mu = log (0.55 *. s);
    promotion_overhead_sigma = 0.45;
  }
