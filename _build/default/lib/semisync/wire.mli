(** Messages of the prior setup: primary->replica shipping, semi-sync
    acks, client writes, and the orchestrator's health pings. *)

type t =
  | Replicate of { entries : Binlog.Entry.t list }
  | Ack of { seq : int; from_acker : bool }
  | Write_request of {
      write_id : int;
      table : string;
      ops : Binlog.Event.row_op list;
      client : string;
    }
  | Write_reply of { write_id : int; ok : bool }
  | Ping of { ping_id : int }
  | Pong of { ping_id : int }

(** Wire size in bytes for bandwidth accounting. *)
val size : t -> int
