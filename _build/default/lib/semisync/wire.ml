(* Messages of the prior setup: primary->replica shipping, semi-sync
   acks, client writes, and the orchestrator's out-of-band health pings. *)

type t =
  | Replicate of { entries : Binlog.Entry.t list }
  | Ack of { seq : int; from_acker : bool }
  | Write_request of {
      write_id : int;
      table : string;
      ops : Binlog.Event.row_op list;
      client : string;
    }
  | Write_reply of { write_id : int; ok : bool }
  | Ping of { ping_id : int }
  | Pong of { ping_id : int }

let size = function
  | Replicate { entries } ->
    48 + List.fold_left (fun acc e -> acc + Binlog.Entry.size e) 0 entries
  | Ack _ -> 40
  | Write_request { ops; table; _ } ->
    48 + String.length table
    + List.fold_left (fun acc op -> acc + Binlog.Event.row_op_size op) 0 ops
  | Write_reply _ -> 32
  | Ping _ | Pong _ -> 24
