lib/sim/topology.mli:
