lib/sim/heap.mli:
