lib/sim/topology.ml: Hashtbl List
