lib/sim/probe.mli: Engine
