lib/sim/probe.ml: Engine List
