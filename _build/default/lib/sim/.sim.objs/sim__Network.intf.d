lib/sim/network.mli: Engine Latency Topology
