lib/sim/latency.mli: Rng Topology
