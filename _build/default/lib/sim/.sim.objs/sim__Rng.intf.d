lib/sim/rng.mli:
