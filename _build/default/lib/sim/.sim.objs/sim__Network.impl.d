lib/sim/network.ml: Engine Hashtbl Latency Option Rng Topology
