lib/sim/latency.ml: Hashtbl Rng Topology
