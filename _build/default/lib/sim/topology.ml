(* Physical placement of simulated nodes: which geographic region each node
   lives in, and which nodes exist at all.  Node identifiers are plain
   strings ("mysql1.frc", "logtailer2.prn") so traces read naturally. *)

type node_id = string

type region = string

type node_info = { id : node_id; region : region }

type t = {
  mutable nodes : node_info list; (* insertion order preserved *)
  by_id : (node_id, node_info) Hashtbl.t;
}

let create () = { nodes = []; by_id = Hashtbl.create 16 }

let add_node t ~id ~region =
  if Hashtbl.mem t.by_id id then invalid_arg ("Topology.add_node: duplicate " ^ id);
  let info = { id; region } in
  Hashtbl.replace t.by_id id info;
  t.nodes <- t.nodes @ [ info ]

let remove_node t id =
  Hashtbl.remove t.by_id id;
  t.nodes <- List.filter (fun n -> n.id <> id) t.nodes

let mem t id = Hashtbl.mem t.by_id id

let region_of t id =
  match Hashtbl.find_opt t.by_id id with
  | Some info -> info.region
  | None -> invalid_arg ("Topology.region_of: unknown node " ^ id)

let nodes t = List.map (fun n -> n.id) t.nodes

let nodes_in_region t region =
  List.filter_map (fun n -> if n.region = region then Some n.id else None) t.nodes

let regions t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n.region then None
      else begin
        Hashtbl.replace seen n.region ();
        Some n.region
      end)
    t.nodes

let same_region t a b = region_of t a = region_of t b
