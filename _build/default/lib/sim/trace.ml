(* Minimal tracing facility for the simulator.

   Traces are timestamped with virtual time and collected in memory so
   tests can assert on them; when [echo] is on they are also printed,
   which the examples use to narrate scenarios. *)

type entry = { time : float; tag : string; message : string }

type t = {
  mutable entries : entry list; (* newest first *)
  mutable echo : bool;
  mutable enabled : bool;
  engine : Engine.t;
}

let create ?(echo = false) engine = { entries = []; echo; enabled = true; engine }

let set_echo t echo = t.echo <- echo

let set_enabled t enabled = t.enabled <- enabled

let record t ~tag fmt =
  Format.kasprintf
    (fun message ->
      if t.enabled then begin
        let time = Engine.now t.engine in
        t.entries <- { time; tag; message } :: t.entries;
        if t.echo then
          Format.printf "[%10.0fus] %-12s %s@." time tag message
      end)
    fmt

let entries t = List.rev t.entries

let entries_with_tag t tag = List.filter (fun e -> e.tag = tag) (entries t)

let clear t = t.entries <- []
