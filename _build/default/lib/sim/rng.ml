(* Deterministic pseudo-random number generator (SplitMix64).

   Every stochastic decision in the simulator flows through one of these
   generators so that a run is fully determined by its seed.  [split]
   derives an independent stream, which lets each node own a private
   generator whose draws do not perturb its peers'. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

(* Uniform float in [0, 1): use the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* Uniform int in [0, bound). *)
let int t bound =
  assert (bound > 0);
  (* mask to 62 bits so the value fits OCaml's native int non-negatively *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Exponential with the given mean. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

(* Standard normal via Box-Muller. *)
let normal_std t =
  let u1 = max epsilon_float (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let normal t ~mean ~stddev = mean +. (stddev *. normal_std t)

(* Lognormal parameterised by the mean/stddev of the underlying normal.
   Used for heavy-tailed operational delays (automation queueing etc.). *)
let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal_std t))

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
