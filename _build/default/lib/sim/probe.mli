(** Generic write-availability probe.

    Issues a probe operation every [interval]; the embedder's [issue]
    closure performs the actual write and reports the outcome (or never
    calls back — the timeout then records a failure).  Downtime is
    measured client-side as the largest gap between consecutive
    successes: the metric behind the paper's Table 2. *)

type t

(** [start engine ~issue] begins probing.  [issue ~on_outcome] must
    eventually call [on_outcome ok] (extra calls are ignored). *)
val start :
  ?interval:float -> ?timeout:float -> Engine.t -> issue:(on_outcome:(bool -> unit) -> unit) -> t

val stop : t -> unit

val successes : t -> int

val failures : t -> int

(** Timestamps of successful probes, oldest first. *)
val success_times : t -> float list

(** Largest gap between consecutive successful commits within the
    window, in microseconds. *)
val max_downtime : t -> start_time:float -> end_time:float -> float
