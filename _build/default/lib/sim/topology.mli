(** Physical placement of simulated nodes: which geographic region each
    node lives in.  Node identifiers are plain strings so traces read
    naturally. *)

type node_id = string

type region = string

type t

val create : unit -> t

(** Raises [Invalid_argument] on duplicate ids. *)
val add_node : t -> id:node_id -> region:region -> unit

val remove_node : t -> node_id -> unit

val mem : t -> node_id -> bool

(** Raises [Invalid_argument] for unknown nodes. *)
val region_of : t -> node_id -> region

(** All nodes in insertion order. *)
val nodes : t -> node_id list

val nodes_in_region : t -> region -> node_id list

(** Regions in first-seen order. *)
val regions : t -> region list

val same_region : t -> node_id -> node_id -> bool
