(* One-way network delay models, in microseconds.

   The defaults are calibrated to the paper's setting: sub-millisecond
   round trips inside a region, tens of milliseconds across regions. *)

type t = {
  same_region : Rng.t -> float;
  cross_region : src:Topology.region -> dst:Topology.region -> Rng.t -> float;
}

(* Deterministic pseudo-distance between two region names so that a given
   region pair always sees the same base latency without explicit
   configuration.  Spread one-way delays over [lo, hi]. *)
let pair_base ~lo ~hi src dst =
  let a, b = if src < dst then (src, dst) else (dst, src) in
  let h = Hashtbl.hash (a, b) in
  let frac = float_of_int (h mod 1000) /. 1000.0 in
  lo +. ((hi -. lo) *. frac)

let default =
  {
    (* ~0.2-0.4ms RTT in-region *)
    same_region = (fun rng -> Rng.uniform rng ~lo:90.0 ~hi:180.0);
    (* ~30-80ms RTT cross-region, stable per pair, small jitter *)
    cross_region =
      (fun ~src ~dst rng ->
        let base = pair_base ~lo:15_000.0 ~hi:40_000.0 src dst in
        base +. Rng.uniform rng ~lo:0.0 ~hi:(base *. 0.05));
  }

(* A model with fixed means, useful in unit tests. *)
let fixed ~same ~cross =
  { same_region = (fun _ -> same); cross_region = (fun ~src:_ ~dst:_ _ -> cross) }

(* Override the delay for one specific region pair (e.g. pin clients at
   ~10 ms RTT from the primary region, §6.1). *)
let override t ~region_a ~region_b ~lo ~hi =
  let cross ~src ~dst rng =
    if (src = region_a && dst = region_b) || (src = region_b && dst = region_a) then
      Rng.uniform rng ~lo ~hi
    else t.cross_region ~src ~dst rng
  in
  { t with cross_region = cross }

let one_way t ~src_region ~dst_region rng =
  if src_region = dst_region then t.same_region rng
  else t.cross_region ~src:src_region ~dst:dst_region rng
