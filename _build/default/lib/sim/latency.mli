(** One-way network delay models, in microseconds.

    Defaults are calibrated to the paper's setting: sub-millisecond
    round trips inside a region, tens of milliseconds across regions. *)

type t = {
  same_region : Rng.t -> float;
  cross_region : src:Topology.region -> dst:Topology.region -> Rng.t -> float;
}

(** In-region ~0.2-0.4 ms RTT; cross-region ~30-80 ms RTT, stable per
    region pair with small jitter. *)
val default : t

(** Fixed means, for unit tests. *)
val fixed : same:float -> cross:float -> t

(** Deterministic base one-way delay for a region pair, spread over
    [lo, hi] by a hash of the pair. *)
val pair_base : lo:float -> hi:float -> Topology.region -> Topology.region -> float

(** Override the delay for one specific region pair with uniform(lo,hi)
    (e.g. pin clients at ~10 ms RTT from the primary region, §6.1). *)
val override : t -> region_a:Topology.region -> region_b:Topology.region -> lo:float -> hi:float -> t

(** Draw a one-way delay. *)
val one_way : t -> src_region:Topology.region -> dst_region:Topology.region -> Rng.t -> float
