(** Discrete-event simulation engine.

    Virtual time is a float measured in {e microseconds} (the unit the
    paper reports commit latencies in).  The engine owns a single event
    queue; events scheduled for the same instant fire in scheduling
    order, keeping runs deterministic. *)

type t

type handle

(** Unit helpers: [us = 1.0], [ms = 1_000.0], [s = 1_000_000.0]. *)
val us : float

val ms : float

val s : float

val create : ?seed:int -> unit -> t

(** Current virtual time in microseconds. *)
val now : t -> float

(** The engine's root RNG; split it rather than drawing from it in
    component code. *)
val rng : t -> Rng.t

(** Number of events executed so far. *)
val executed_events : t -> int

(** [schedule t ~delay fn] runs [fn] after [delay] microseconds of
    virtual time.  Returns a handle usable with {!cancel}. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** Schedule at an absolute virtual time (clamped to now). *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

val cancel : handle -> unit

val cancelled : handle -> bool

(** Execute due events until virtual time reaches [limit]; time is left
    at [limit] so consecutive calls compose. *)
val run_until : t -> float -> unit

(** [run_for t d] is [run_until t (now t +. d)]. *)
val run_for : t -> float -> unit

(** Drain the queue completely; raises once [max_events] have run (guard
    against non-terminating workloads). *)
val run : t -> max_events:int -> unit

(** Events currently queued. *)
val pending : t -> int
