(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic decision in the simulator flows through one of these
    generators, so a run is fully determined by its seed. *)

type t

(** [create seed] makes a generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create (Int64.of_int seed)]. *)
val of_int : int -> t

(** Next raw 64-bit draw. *)
val next_int64 : t -> int64

(** [split t] derives an independent stream; draws from the child do not
    perturb the parent's sequence. *)
val split : t -> t

(** Uniform float in [0, 1). *)
val float : t -> float

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform float in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponential with the given mean. *)
val exponential : t -> mean:float -> float

(** Standard normal (Box-Muller). *)
val normal_std : t -> float

val normal : t -> mean:float -> stddev:float -> float

(** Lognormal parameterised by the underlying normal's [mu]/[sigma]; used
    for heavy-tailed operational delays. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** Uniform choice from a non-empty array. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
