(** Array-backed binary min-heap keyed by (key, seq).

    The sequence number breaks ties so same-instant events pop in push
    order, keeping simulation runs deterministic. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:float -> seq:int -> 'a -> unit

val peek : 'a t -> 'a entry option

val pop : 'a t -> 'a entry option
