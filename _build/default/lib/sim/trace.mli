(** Tracing for the simulator: timestamped with virtual time, collected
    in memory for assertions, optionally echoed for narrated examples. *)

type entry = { time : float; tag : string; message : string }

type t

val create : ?echo:bool -> Engine.t -> t

val set_echo : t -> bool -> unit

val set_enabled : t -> bool -> unit

(** [record t ~tag fmt ...] formats and stores one entry. *)
val record : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Entries oldest-first. *)
val entries : t -> entry list

val entries_with_tag : t -> string -> entry list

val clear : t -> unit
