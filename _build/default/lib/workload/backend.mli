(** A workload backend abstracts "a replicaset a client can write to" so
    the same generators drive MyRaft and the semi-sync prior setup — the
    A/B methodology of §6.1. *)

type t = {
  engine : Sim.Engine.t;
  label : string;
  register_client :
    id:string -> region:string -> on_reply:(write_id:int -> ok:bool -> unit) -> unit;
  send_write :
    client:string -> write_id:int -> table:string -> ops:Binlog.Event.row_op list -> bool;
  set_client_latency : client:string -> latency:float -> unit;
  member_ids : unit -> string list;
}

val myraft : Myraft.Cluster.t -> t

val semisync : Semisync.Cluster.t -> t
