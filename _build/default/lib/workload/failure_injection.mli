(** MyShadow-style failure injection (§5.1): repeatedly crash the
    current leader or repeatedly request graceful transfers, with
    checksum-based correctness checks across the ring. *)

type kind = Crash_leader | Graceful_transfer

type t

val start : ?interval:float -> ?restart_after:float -> Myraft.Cluster.t -> kind:kind -> t

val stop : t -> unit

val injections : t -> int

(** §5.1 checksum comparison: every live engine at the reference
    committed count must have identical content.  [Ok n] returns the
    compared transaction count. *)
val consistency_check : Myraft.Cluster.t -> (int, string) result
