(* MyShadow (§5.1): "a testing tool which generates a
   production-representative workload and allows us to test services in
   an isolated environment."

   A shadow trace is a recorded sequence of timed write operations.  The
   same trace can be replayed against any backend — which is exactly how
   the §6.1 A/B test should be run: both stacks see *identical*
   operations at identical offsets, so nothing but the replication stack
   differs. *)

type op = {
  at : float; (* offset from trace start, microseconds *)
  table : string;
  key : string;
  value_size : int;
}

type trace = { ops : op list (* ascending by [at] *); trace_duration : float }

let length trace = List.length trace.ops

let duration trace = trace.trace_duration

let ops trace = trace.ops

(* Synthesize a production-representative trace: Poisson arrivals,
   Zipf-ish key popularity over [key_space], lognormal payload sizes.
   Deterministic in [seed]. *)
let record ?(table = "shadow") ?(key_space = 100_000) ?(value_mu = log 420.0)
    ?(value_sigma = 0.45) ~seed ~rate_per_s ~duration () =
  let rng = Sim.Rng.of_int seed in
  let mean_gap = Sim.Engine.s /. rate_per_s in
  let rec generate at acc =
    if at > duration then List.rev acc
    else begin
      let key =
        (* mild skew: half the traffic hits a hot tenth of the key space *)
        if Sim.Rng.bool rng then
          Printf.sprintf "row-%d" (Sim.Rng.int rng (max 1 (key_space / 10)))
        else Printf.sprintf "row-%d" (Sim.Rng.int rng key_space)
      in
      let value_size =
        max 16 (int_of_float (Sim.Rng.lognormal rng ~mu:value_mu ~sigma:value_sigma))
      in
      let op = { at; table; key; value_size } in
      generate (at +. Sim.Rng.exponential rng ~mean:mean_gap) (op :: acc)
    end
  in
  { ops = generate 0.0 []; trace_duration = duration }

(* Replay a trace against a backend through a generator client: each op
   is issued at its recorded offset.  Returns the generator so callers
   read its stats when the replay window closes. *)
let replay ?(client_id = "shadow-client") ?(region = "clients") ?client_latency trace
    ~backend =
  let gen =
    Generator.create ~backend ~client_id ~region ?client_latency
      ~bucket_width:Sim.Engine.s ()
  in
  let engine = backend.Backend.engine in
  List.iter
    (fun op ->
      ignore
        (Sim.Engine.schedule engine ~delay:op.at (fun () ->
             Generator.issue_op gen ~table:op.table ~key:op.key ~value_size:op.value_size)))
    trace.ops;
  gen

(* Shadow A/B: replay the same trace on both stacks and return both
   generators' stats — the §6.1 comparison with identical inputs. *)
let total_bytes trace =
  List.fold_left (fun acc op -> acc + op.value_size) 0 trace.ops
