(* A workload backend abstracts "a replicaset a client can write to" so
   the same generators drive both MyRaft and the semi-sync prior setup —
   the A/B methodology of §6.1. *)

type t = {
  engine : Sim.Engine.t;
  label : string;
  (* Register a client node; [on_reply] is invoked for each write reply. *)
  register_client :
    id:string -> region:string -> on_reply:(write_id:int -> ok:bool -> unit) -> unit;
  (* Send one write; returns false when no primary is known. *)
  send_write :
    client:string -> write_id:int -> table:string -> ops:Binlog.Event.row_op list -> bool;
  (* Pin the one-way latency between a client and every ring member. *)
  set_client_latency : client:string -> latency:float -> unit;
  member_ids : unit -> string list;
}

let myraft (cluster : Myraft.Cluster.t) =
  {
    engine = Myraft.Cluster.engine cluster;
    label = "MyRaft";
    register_client =
      (fun ~id ~region ~on_reply ->
        Myraft.Cluster.register_client cluster ~id ~region ~handler:(fun ~src:_ msg ->
            match msg with
            | Myraft.Wire.Write_reply { write_id; outcome } ->
              on_reply ~write_id ~ok:(outcome = Myraft.Wire.Committed)
            | _ -> ()));
    send_write =
      (fun ~client ~write_id ~table ~ops ->
        match
          Myraft.Service_discovery.primary_of (Myraft.Cluster.discovery cluster)
            ~replicaset:(Myraft.Cluster.replicaset_name cluster)
        with
        | None -> false
        | Some dst ->
          Myraft.Cluster.send_from_client cluster ~client ~dst
            (Myraft.Wire.Write_request { write_id; table; ops; client });
          true);
    set_client_latency =
      (fun ~client ~latency ->
        List.iter
          (fun member ->
            Myraft.Cluster.set_link_latency cluster ~a:client ~b:member ~latency)
          (Myraft.Cluster.member_ids cluster));
    member_ids = (fun () -> Myraft.Cluster.member_ids cluster);
  }

let semisync (cluster : Semisync.Cluster.t) =
  {
    engine = Semisync.Cluster.engine cluster;
    label = "Semi-Sync";
    register_client =
      (fun ~id ~region ~on_reply ->
        Semisync.Cluster.register_client cluster ~id ~region ~handler:(fun ~src:_ msg ->
            match msg with
            | Semisync.Wire.Write_reply { write_id; ok } -> on_reply ~write_id ~ok
            | _ -> ()));
    send_write =
      (fun ~client ~write_id ~table ~ops ->
        match
          Myraft.Service_discovery.primary_of (Semisync.Cluster.discovery cluster)
            ~replicaset:(Semisync.Cluster.replicaset_name cluster)
        with
        | None -> false
        | Some dst ->
          Semisync.Cluster.send_from_client cluster ~client ~dst
            (Semisync.Wire.Write_request { write_id; table; ops; client });
          true);
    set_client_latency =
      (fun ~client ~latency ->
        List.iter
          (fun member ->
            Semisync.Cluster.set_link_latency cluster ~a:client ~b:member ~latency)
          (Semisync.Cluster.member_ids cluster));
    member_ids = (fun () -> Semisync.Cluster.member_ids cluster);
  }
