(* Workload generators.

   [Production]: MyShadow-style open-loop traffic — Poisson arrivals from
   a client ~10 ms away from the primary, transaction sizes drawn from a
   lognormal around the fleet's ~500-byte average (§4.2.2, §6.1).

   [Sysbench]: the sysbench OLTP write benchmark — a closed loop of N
   worker threads colocated with the primary (§6.1 runs the clients on
   the primary's machine to remove client-side latency). *)

type stats = {
  latencies : Stats.Histogram.t; (* commit latency as seen by the client *)
  throughput : Stats.Timeseries.t; (* commits per bucket *)
  mutable issued : int;
  mutable committed : int;
  mutable rejected : int;
  mutable timed_out : int;
}

let make_stats ~bucket_width =
  {
    latencies = Stats.Histogram.create ();
    throughput = Stats.Timeseries.create ~bucket_width;
    issued = 0;
    committed = 0;
    rejected = 0;
    timed_out = 0;
  }

type t = {
  backend : Backend.t;
  client_id : string;
  rng : Sim.Rng.t;
  stats : stats;
  write_timeout : float;
  outstanding : (int, float * (bool -> unit) option) Hashtbl.t;
    (* write id -> (send time, continuation) *)
  mutable next_id : int;
  mutable running : bool;
  key_space : int;
  value_mu : float; (* lognormal of row payload size *)
  value_sigma : float;
}

let stats t = t.stats

let stop t = t.running <- false

let create ~backend ~client_id ~region ?client_latency ?(write_timeout = 5.0 *. Sim.Engine.s)
    ?(key_space = 100_000) ?(value_mu = log 420.0) ?(value_sigma = 0.4)
    ?(bucket_width = Sim.Engine.s) () =
  let t =
    {
      backend;
      client_id;
      rng = Sim.Rng.split (Sim.Engine.rng backend.Backend.engine);
      stats = make_stats ~bucket_width;
      write_timeout;
      outstanding = Hashtbl.create 256;
      next_id = 1;
      running = true;
      key_space;
      value_mu;
      value_sigma;
    }
  in
  backend.Backend.register_client ~id:client_id ~region ~on_reply:(fun ~write_id ~ok ->
      match Hashtbl.find_opt t.outstanding write_id with
      | None -> ()
      | Some (sent_at, k) ->
        Hashtbl.remove t.outstanding write_id;
        let now = Sim.Engine.now backend.Backend.engine in
        if ok then begin
          t.stats.committed <- t.stats.committed + 1;
          Stats.Histogram.record t.stats.latencies (now -. sent_at);
          Stats.Timeseries.record t.stats.throughput now
        end
        else t.stats.rejected <- t.stats.rejected + 1;
        match k with Some k -> k ok | None -> ());
  (* With no explicit override the client's latency to the ring comes
     from the region-pair model. *)
  (match client_latency with
  | Some latency -> backend.Backend.set_client_latency ~client:client_id ~latency
  | None -> ());
  t

(* Issue one specific write; [k] runs when it settles (commit, reject or
   timeout).  Used directly by trace replay (Shadow). *)
let issue_op ?k t ~table ~key ~value_size =
  let engine = t.backend.Backend.engine in
  let write_id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.stats.issued <- t.stats.issued + 1;
  let ops = [ Binlog.Event.Insert { key; value = String.make value_size 'd' } ] in
  Hashtbl.replace t.outstanding write_id (Sim.Engine.now engine, k);
  let sent = t.backend.Backend.send_write ~client:t.client_id ~write_id ~table ~ops in
  if not sent then begin
    Hashtbl.remove t.outstanding write_id;
    t.stats.rejected <- t.stats.rejected + 1;
    match k with Some k -> k false | None -> ()
  end
  else
    ignore
      (Sim.Engine.schedule engine ~delay:t.write_timeout (fun () ->
           match Hashtbl.find_opt t.outstanding write_id with
           | None -> () (* already settled *)
           | Some (_, k) ->
             Hashtbl.remove t.outstanding write_id;
             t.stats.timed_out <- t.stats.timed_out + 1;
             (match k with Some k -> k false | None -> ())))

(* Issue one write with generator-drawn key and payload size. *)
let issue ?k t =
  let value_size =
    max 16 (int_of_float (Sim.Rng.lognormal t.rng ~mu:t.value_mu ~sigma:t.value_sigma))
  in
  let key = Printf.sprintf "row-%d" (Sim.Rng.int t.rng t.key_space) in
  issue_op ?k t ~table:"sbtest" ~key ~value_size

(* Open-loop Poisson arrivals at [rate_per_s]. *)
let start_open_loop t ~rate_per_s =
  let engine = t.backend.Backend.engine in
  let mean_gap = Sim.Engine.s /. rate_per_s in
  let rec tick () =
    if t.running then begin
      issue t;
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Rng.exponential t.rng ~mean:mean_gap) tick)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:(Sim.Rng.exponential t.rng ~mean:mean_gap) tick)

(* Closed loop with [threads] workers (sysbench-style). *)
let start_closed_loop t ~threads =
  let engine = t.backend.Backend.engine in
  let rec worker () =
    if t.running then
      issue t ~k:(fun _ ->
          (* tiny think time to model the client library overhead *)
          ignore (Sim.Engine.schedule engine ~delay:(10.0 *. Sim.Engine.us) worker))
  in
  for _ = 1 to threads do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Rng.uniform t.rng ~lo:0.0 ~hi:Sim.Engine.ms)
         worker)
  done

let summary t =
  let st = t.stats in
  Printf.sprintf "%s/%s: issued=%d committed=%d rejected=%d timeout=%d%s"
    t.backend.Backend.label t.client_id st.issued st.committed st.rejected st.timed_out
    (if Stats.Histogram.is_empty st.latencies then ""
     else
       Printf.sprintf " | %s"
         (Stats.Histogram.summary_line ~label:"latency(us)" st.latencies))
