(** MyShadow (§5.1): record a production-representative workload trace
    and replay it — identically — against any backend, which is how the
    §6.1 A/B comparison is run (nothing but the replication stack differs
    between the two sides). *)

type op = {
  at : float;  (** offset from trace start, microseconds *)
  table : string;
  key : string;
  value_size : int;
}

type trace

val length : trace -> int

val duration : trace -> float

val ops : trace -> op list

val total_bytes : trace -> int

(** Synthesize a deterministic production-like trace: Poisson arrivals,
    skewed key popularity, lognormal payload sizes. *)
val record :
  ?table:string ->
  ?key_space:int ->
  ?value_mu:float ->
  ?value_sigma:float ->
  seed:int ->
  rate_per_s:float ->
  duration:float ->
  unit ->
  trace

(** Replay each op at its recorded offset through a generator client;
    read the returned generator's stats when the window closes. *)
val replay :
  ?client_id:string ->
  ?region:string ->
  ?client_latency:float ->
  trace ->
  backend:Backend.t ->
  Generator.t
