lib/workload/failure_injection.mli: Myraft
