lib/workload/generator.ml: Backend Binlog Hashtbl Printf Sim Stats String
