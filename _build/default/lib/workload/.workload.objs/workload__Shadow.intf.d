lib/workload/shadow.mli: Backend Generator
