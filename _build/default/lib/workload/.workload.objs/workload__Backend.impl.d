lib/workload/backend.ml: Binlog List Myraft Semisync Sim
