lib/workload/backend.mli: Binlog Myraft Semisync Sim
