lib/workload/generator.mli: Backend Stats
