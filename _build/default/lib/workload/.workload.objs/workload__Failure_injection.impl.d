lib/workload/failure_injection.ml: Array Int32 List Myraft Printf Raft Sim Storage
