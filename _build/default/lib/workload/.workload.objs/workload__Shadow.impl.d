lib/workload/shadow.ml: Backend Generator List Printf Sim
