(** Workload generators for the §6.1 experiments: MyShadow-style
    open-loop production traffic (Poisson arrivals, lognormal payload
    sizes) and the sysbench OLTP-write closed loop. *)

type stats = {
  latencies : Stats.Histogram.t;
  throughput : Stats.Timeseries.t;
  mutable issued : int;
  mutable committed : int;
  mutable rejected : int;
  mutable timed_out : int;
}

type t

(** Register a client against a backend.  [client_latency] pins a fixed
    one-way latency to every ring member; omit it to use the region
    latency model. *)
val create :
  backend:Backend.t ->
  client_id:string ->
  region:string ->
  ?client_latency:float ->
  ?write_timeout:float ->
  ?key_space:int ->
  ?value_mu:float ->
  ?value_sigma:float ->
  ?bucket_width:float ->
  unit ->
  t

val stats : t -> stats

val stop : t -> unit

(** Issue one specific write (trace replay); [k] runs when it settles
    (commit/reject/timeout). *)
val issue_op : ?k:(bool -> unit) -> t -> table:string -> key:string -> value_size:int -> unit

(** Issue one write with generator-drawn key and payload size. *)
val issue : ?k:(bool -> unit) -> t -> unit

(** Poisson arrivals at [rate_per_s]. *)
val start_open_loop : t -> rate_per_s:float -> unit

(** [threads] sysbench-style workers, each re-issuing on completion. *)
val start_closed_loop : t -> threads:int -> unit

val summary : t -> string
