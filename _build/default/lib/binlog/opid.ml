(* Raft OpId: the (term, index) pair MyRaft stamps on every transaction in
   addition to its GTID.  Index 0 / term 0 is the sentinel that precedes
   any real entry. *)

type t = { term : int; index : int }

let make ~term ~index =
  assert (term >= 0 && index >= 0);
  { term; index }

let zero = { term = 0; index = 0 }

let term t = t.term

let index t = t.index

let compare a b =
  match Int.compare a.term b.term with 0 -> Int.compare a.index b.index | c -> c

let equal a b = a.term = b.term && a.index = b.index

(* Raft log up-to-date comparison: higher term wins, then higher index. *)
let at_least_as_up_to_date_as a b = compare a b >= 0

let to_string t = Printf.sprintf "%d.%d" t.term t.index

let pp fmt t = Format.pp_print_string fmt (to_string t)
