lib/binlog/gtid_set.ml: Format Gtid List Map Option Printf String
