lib/binlog/event.mli: Gtid Gtid_set
