lib/binlog/opid.ml: Format Int Printf
