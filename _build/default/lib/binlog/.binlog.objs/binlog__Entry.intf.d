lib/binlog/entry.mli: Event Gtid Opid
