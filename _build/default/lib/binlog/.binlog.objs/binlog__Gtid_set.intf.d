lib/binlog/gtid_set.mli: Format Gtid
