lib/binlog/gtid.ml: Format Hashtbl Int Printf String
