lib/binlog/log_store.ml: Entry Gtid_set List Opid Printf Vec
