lib/binlog/checksum.mli:
