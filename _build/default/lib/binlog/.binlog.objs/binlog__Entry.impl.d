lib/binlog/entry.ml: Checksum Event Gtid Int32 List Marshal Opid Printf String
