lib/binlog/gtid.mli: Format
