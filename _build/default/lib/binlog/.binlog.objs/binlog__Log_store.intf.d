lib/binlog/log_store.mli: Entry Gtid_set Opid
