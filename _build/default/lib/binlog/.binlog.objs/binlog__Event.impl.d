lib/binlog/event.ml: Gtid Gtid_set List Printf String
