lib/binlog/opid.mli: Format
