lib/binlog/checksum.ml: Array Char Int32 Lazy String
