(** Global Transaction Identifier: (server source, gno), as in MySQL.
    Readable server names stand in for 128-bit uuids. *)

type t

(** Requires [gno >= 1]. *)
val make : source:string -> gno:int -> t

val source : t -> string

val gno : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

(** "source:gno" *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

val hash : t -> int
