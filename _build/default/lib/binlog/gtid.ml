(* Global Transaction Identifier: (server_uuid, gno).

   As in MySQL, the uuid identifies the server that first wrote the
   transaction and gno is a monotonically increasing counter on that
   server.  We use readable server names in place of 128-bit uuids. *)

type t = { source : string; gno : int }

let make ~source ~gno =
  assert (gno >= 1);
  { source; gno }

let source t = t.source

let gno t = t.gno

let compare a b =
  match String.compare a.source b.source with 0 -> Int.compare a.gno b.gno | c -> c

let equal a b = a.source = b.source && a.gno = b.gno

let to_string t = Printf.sprintf "%s:%d" t.source t.gno

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash t = Hashtbl.hash (t.source, t.gno)
