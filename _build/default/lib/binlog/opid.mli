(** Raft OpId: the (term, index) pair MyRaft stamps on every transaction
    in addition to its GTID (§3). *)

type t = { term : int; index : int }

val make : term:int -> index:int -> t

(** The sentinel that precedes any real entry: term 0, index 0. *)
val zero : t

val term : t -> int

val index : t -> int

(** Order by term, then index. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Raft's log up-to-date comparison: higher term wins, then higher
    index. *)
val at_least_as_up_to_date_as : t -> t -> bool

(** "term.index" *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
