(** GTID sets: per-source disjoint inclusive intervals — the structure
    behind MySQL's "uuid:1-5:7-9" notation.

    These sets are the replica-position metadata MyRaft preserves: every
    binlog file's Previous-GTIDs header, each server's gtid_executed,
    and the adjustment made when a demoted leader's log suffix is
    truncated (§3.3). *)

type t

val empty : t

val is_empty : t -> bool

(** Add a closed gno interval.  Requires [1 <= lo <= hi]. *)
val add_interval : t -> source:string -> lo:int -> hi:int -> t

val add : t -> Gtid.t -> t

val remove : t -> Gtid.t -> t

val contains : t -> Gtid.t -> bool

val union : t -> t -> t

(** Number of GTIDs in the set. *)
val cardinal : t -> int

val subset : t -> t -> bool

val equal : t -> t -> bool

(** Largest gno present for [source], 0 if none — used to continue a gno
    sequence after promotion. *)
val max_gno : t -> source:string -> int

val sources : t -> string list

val fold_gtids : t -> init:'a -> ('a -> Gtid.t -> 'a) -> 'a

(** MySQL-style rendering, e.g. "srv1:1-5:7,srv2:3". *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
