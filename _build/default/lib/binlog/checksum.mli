(** CRC-32 (IEEE 802.3, reflected) — the checksum MySQL stamps on binlog
    events.  MyRaft generates it at OpId-assignment time (§3.4). *)

val string : string -> int32
