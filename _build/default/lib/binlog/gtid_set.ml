(* GTID sets: per-source sorted lists of disjoint inclusive intervals,
   exactly the structure behind MySQL's "uuid:1-5:7-9" notation.

   These sets are the replica-position metadata MyRaft preserves: the
   Previous-GTIDs header of every binlog file, gtid_executed on each
   server, and the adjustments made when a demoted leader's log suffix is
   truncated. *)

type interval = { lo : int; hi : int } (* inclusive, lo <= hi *)

module Source_map = Map.Make (String)

type t = interval list Source_map.t (* sorted by lo, disjoint, non-adjacent *)

let empty = Source_map.empty

let is_empty = Source_map.is_empty

(* Normalize a sorted interval list: merge overlapping/adjacent runs. *)
let rec merge_sorted = function
  | a :: b :: rest ->
    if b.lo <= a.hi + 1 then merge_sorted ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
    else a :: merge_sorted (b :: rest)
  | short -> short

let add_interval t ~source ~lo ~hi =
  if lo > hi || lo < 1 then invalid_arg "Gtid_set.add_interval";
  let existing = Option.value (Source_map.find_opt source t) ~default:[] in
  let merged =
    merge_sorted (List.sort (fun a b -> compare a.lo b.lo) ({ lo; hi } :: existing))
  in
  Source_map.add source merged t

let add t gtid = add_interval t ~source:(Gtid.source gtid) ~lo:(Gtid.gno gtid) ~hi:(Gtid.gno gtid)

let remove t gtid =
  let source = Gtid.source gtid and g = Gtid.gno gtid in
  match Source_map.find_opt source t with
  | None -> t
  | Some intervals ->
    let split acc iv =
      if g < iv.lo || g > iv.hi then iv :: acc
      else begin
        let acc = if g > iv.lo then { lo = iv.lo; hi = g - 1 } :: acc else acc in
        if g < iv.hi then { lo = g + 1; hi = iv.hi } :: acc else acc
      end
    in
    let remaining = List.rev (List.fold_left split [] intervals) in
    if remaining = [] then Source_map.remove source t else Source_map.add source remaining t

let contains t gtid =
  match Source_map.find_opt (Gtid.source gtid) t with
  | None -> false
  | Some intervals ->
    let g = Gtid.gno gtid in
    List.exists (fun iv -> iv.lo <= g && g <= iv.hi) intervals

let union a b =
  Source_map.union
    (fun _ ia ib ->
      Some (merge_sorted (List.sort (fun x y -> compare x.lo y.lo) (ia @ ib))))
    a b

let cardinal t =
  Source_map.fold
    (fun _ intervals acc ->
      acc + List.fold_left (fun n iv -> n + iv.hi - iv.lo + 1) 0 intervals)
    t 0

let subset a b =
  Source_map.for_all
    (fun source intervals ->
      match Source_map.find_opt source b with
      | None -> false
      | Some super ->
        List.for_all
          (fun iv -> List.exists (fun s -> s.lo <= iv.lo && iv.hi <= s.hi) super)
          intervals)
    a

let equal a b = subset a b && subset b a

(* Largest gno present for a source, 0 if none: used to continue a gno
   sequence after promotion. *)
let max_gno t ~source =
  match Source_map.find_opt source t with
  | None -> 0
  | Some intervals -> List.fold_left (fun acc iv -> max acc iv.hi) 0 intervals

let sources t = List.map fst (Source_map.bindings t)

let fold_gtids t ~init f =
  Source_map.fold
    (fun source intervals acc ->
      List.fold_left
        (fun acc iv ->
          let acc = ref acc in
          for g = iv.lo to iv.hi do
            acc := f !acc (Gtid.make ~source ~gno:g)
          done;
          !acc)
        acc intervals)
    t init

let to_string t =
  if is_empty t then "<empty>"
  else
    Source_map.bindings t
    |> List.map (fun (source, intervals) ->
           let ivs =
             List.map
               (fun iv ->
                 if iv.lo = iv.hi then string_of_int iv.lo
                 else Printf.sprintf "%d-%d" iv.lo iv.hi)
               intervals
           in
           source ^ ":" ^ String.concat ":" ivs)
    |> String.concat ","

let pp fmt t = Format.pp_print_string fmt (to_string t)
