(** Latency histogram with exact percentiles and ASCII log-bucketed
    rendering (the Figure 5 panels). *)

type t

val create : unit -> t

val record : t -> float -> unit

val count : t -> int

val is_empty : t -> bool

(** Nearest-rank percentile; [p] in [0, 100].  Raises on empty. *)
val percentile : t -> float -> float

val min_value : t -> float

val max_value : t -> float

val mean : t -> float

(** Sample standard deviation (0 for fewer than 2 samples). *)
val stddev : t -> float

val merge : t -> t -> t

val iter : t -> (float -> unit) -> unit

(** [n] log-spaced buckets between min and max as (lo, hi, count) rows. *)
val buckets : t -> n:int -> (float * float * int) list

(** ASCII histogram, one row per bucket. *)
val render : ?buckets_n:int -> ?width:int -> ?unit_label:string -> t -> string

(** One-line "n/avg/p50/p95/p99/max" summary. *)
val summary_line : label:string -> t -> string
