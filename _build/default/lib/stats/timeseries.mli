(** Fixed-width-bucket time series of event counts (commits per unit
    time) for the throughput panels (Figures 5b/5d). *)

type t

(** [bucket_width] in the same unit as recorded timestamps. *)
val create : bucket_width:float -> t

val record : t -> float -> unit

val total : t -> int

val bucket_width : t -> float

(** (bucket start time, count) rows covering the observed range with
    zero-filled gaps. *)
val series : t -> (float * int) list

val mean_rate_per_bucket : t -> float

(** Render two aligned series one character column per bucket,
    downsampling to [width]. *)
val render_pair : label_a:string -> t -> label_b:string -> t -> width:int -> string
