(* Statistical summaries with uncertainty: bootstrap confidence
   intervals for means and percentiles of small trial sets (the Table 2
   downtime distributions come from tens of trials per cell, so point
   estimates deserve error bars). *)

type ci = { point : float; lo : float; hi : float }

let pp_ci ?(scale = 1.0) fmt ci =
  Format.fprintf fmt "%.0f [%.0f, %.0f]" (ci.point /. scale) (ci.lo /. scale)
    (ci.hi /. scale)

let ci_to_string ?(scale = 1.0) ci =
  Format.asprintf "%a" (pp_ci ~scale) ci

let mean values =
  match Array.length values with
  | 0 -> invalid_arg "Summary.mean: empty"
  | n -> Array.fold_left ( +. ) 0.0 values /. float_of_int n

let percentile values p =
  match Array.length values with
  | 0 -> invalid_arg "Summary.percentile: empty"
  | n ->
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Percentile-method bootstrap over [resamples] draws. *)
let bootstrap_ci ?(resamples = 1000) ?(confidence = 0.95) ~rng ~statistic values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Summary.bootstrap_ci: empty";
  let point = statistic values in
  if n = 1 then { point; lo = point; hi = point }
  else begin
    let stats =
      Array.init resamples (fun _ ->
          statistic (Array.init n (fun _ -> values.(Sim.Rng.int rng n))))
    in
    Array.sort compare stats;
    let alpha = (1.0 -. confidence) /. 2.0 in
    let pick q =
      stats.(max 0 (min (resamples - 1) (int_of_float (q *. float_of_int resamples))))
    in
    { point; lo = pick alpha; hi = pick (1.0 -. alpha) }
  end

let mean_ci ?resamples ?confidence ~rng values =
  bootstrap_ci ?resamples ?confidence ~rng ~statistic:mean values

let percentile_ci ?resamples ?confidence ~rng ~p values =
  bootstrap_ci ?resamples ?confidence ~rng ~statistic:(fun v -> percentile v p) values

let of_histogram h =
  let values = Array.make (Histogram.count h) 0.0 in
  let i = ref 0 in
  Histogram.iter h (fun v ->
      values.(!i) <- v;
      incr i);
  values
