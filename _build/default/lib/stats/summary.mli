(** Statistical summaries with uncertainty: bootstrap confidence
    intervals for means and percentiles of small trial sets (error bars
    for the Table 2 downtime cells). *)

type ci = { point : float; lo : float; hi : float }

val pp_ci : ?scale:float -> Format.formatter -> ci -> unit

val ci_to_string : ?scale:float -> ci -> string

val mean : float array -> float

(** Nearest-rank percentile, [p] in [0, 100]. *)
val percentile : float array -> float -> float

(** Percentile-method bootstrap of an arbitrary statistic. *)
val bootstrap_ci :
  ?resamples:int ->
  ?confidence:float ->
  rng:Sim.Rng.t ->
  statistic:(float array -> float) ->
  float array ->
  ci

val mean_ci : ?resamples:int -> ?confidence:float -> rng:Sim.Rng.t -> float array -> ci

val percentile_ci :
  ?resamples:int -> ?confidence:float -> rng:Sim.Rng.t -> p:float -> float array -> ci

(** Extract a histogram's samples for bootstrap analysis. *)
val of_histogram : Histogram.t -> float array
