lib/stats/timeseries.mli:
