lib/stats/timeseries.ml: Array Hashtbl List Printf String
