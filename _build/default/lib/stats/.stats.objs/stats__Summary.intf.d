lib/stats/summary.mli: Format Histogram Sim
