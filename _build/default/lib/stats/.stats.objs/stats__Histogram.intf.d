lib/stats/histogram.mli:
