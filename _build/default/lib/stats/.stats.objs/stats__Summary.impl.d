lib/stats/summary.ml: Array Format Histogram Sim
