(* Latency histogram.

   Keeps every sample (growable float array) so percentiles are exact, and
   can render an ASCII log-bucketed histogram like the paper's Figure 5
   panels.  Sample counts in this repository stay well under a few million
   per experiment, so exact storage is the simple and honest choice. *)

type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.0; size = 0; sorted = true }

let record t v =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let is_empty t = t.size = 0

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.size;
    t.sorted <- true
  end

(* Nearest-rank percentile; [p] in [0, 100]. *)
let percentile t p =
  if t.size = 0 then invalid_arg "Histogram.percentile: empty";
  ensure_sorted t;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
  let idx = max 0 (min (t.size - 1) (rank - 1)) in
  t.data.(idx)

let min_value t =
  if t.size = 0 then invalid_arg "Histogram.min_value: empty";
  ensure_sorted t;
  t.data.(0)

let max_value t =
  if t.size = 0 then invalid_arg "Histogram.max_value: empty";
  ensure_sorted t;
  t.data.(t.size - 1)

let mean t =
  if t.size = 0 then invalid_arg "Histogram.mean: empty";
  let sum = ref 0.0 in
  for i = 0 to t.size - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let sum = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.data.(i) -. m in
      sum := !sum +. (d *. d)
    done;
    sqrt (!sum /. float_of_int (t.size - 1))
  end

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    record t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    record t b.data.(i)
  done;
  t

let iter t f =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

(* Log-spaced buckets between min and max; returns (lo, hi, count) rows. *)
let buckets t ~n =
  if t.size = 0 then []
  else begin
    ensure_sorted t;
    let lo = max 1e-9 (min_value t) and hi = max_value t in
    let hi = if hi <= lo then lo *. 1.001 else hi in
    let ratio = (hi /. lo) ** (1.0 /. float_of_int n) in
    let counts = Array.make n 0 in
    for i = 0 to t.size - 1 do
      let v = max lo t.data.(i) in
      let b = int_of_float (log (v /. lo) /. log ratio) in
      let b = max 0 (min (n - 1) b) in
      counts.(b) <- counts.(b) + 1
    done;
    List.init n (fun i ->
        let blo = lo *. (ratio ** float_of_int i) in
        let bhi = lo *. (ratio ** float_of_int (i + 1)) in
        (blo, bhi, counts.(i)))
  end

(* Render as an ASCII histogram with one row per bucket, used by the
   figure-reproduction benches. *)
let render ?(buckets_n = 20) ?(width = 50) ?(unit_label = "us") t =
  if t.size = 0 then "  (empty histogram)\n"
  else begin
    let rows = buckets t ~n:buckets_n in
    let maxc = List.fold_left (fun acc (_, _, c) -> max acc c) 1 rows in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (lo, hi, c) ->
        let bar = String.make (c * width / maxc) '#' in
        Buffer.add_string buf
          (Printf.sprintf "  %10.1f - %10.1f %s | %-6d %s\n" lo hi unit_label c bar))
      rows;
    Buffer.contents buf
  end

let summary_line ~label t =
  if t.size = 0 then Printf.sprintf "%s: no samples" label
  else
    Printf.sprintf "%s: n=%d avg=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" label t.size
      (mean t) (percentile t 50.0) (percentile t 95.0) (percentile t 99.0) (max_value t)
