(* Downstream services tour: a CDC tailer and the backup service riding
   the preserved binlog format (§3), surviving a failover — including a
   transaction that gets truncated and must never reach the stream — and
   a backup-seeded member replacement after the ring purged its history.

     dune exec examples/cdc_and_backup.exe *)

let ms = Sim.Engine.ms
let s = Sim.Engine.s

let write cluster key value =
  match Myraft.Cluster.primary cluster with
  | None -> false
  | Some srv ->
    let r = ref None in
    Myraft.Server.submit_write srv ~table:"accounts"
      ~ops:[ Binlog.Event.Insert { key; value } ]
      ~reply:(fun o -> r := Some o);
    ignore
      (Myraft.Cluster.run_until cluster ~step:ms ~timeout:(5.0 *. s) (fun () -> !r <> None));
    match !r with Some (Myraft.Wire.Committed _) -> true | _ -> false

let () =
  print_endline "== CDC and backup over the preserved binlog ==";
  let params = { Myraft.Params.default with Myraft.Params.max_binlog_bytes = 8_192 } in
  let cluster =
    Myraft.Cluster.create ~seed:29 ~params ~replicaset:"cdc-demo"
      ~members:(Myraft.Cluster.small_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";

  (* a CDC consumer tails mysql1's binlog *)
  let cdc = Downstream.Cdc.start ~source:"mysql1" cluster in
  for i = 1 to 25 do
    ignore (write cluster (Printf.sprintf "acct%03d" i) "100")
  done;
  Myraft.Cluster.run_for cluster (1.0 *. s);
  Printf.printf "CDC streamed %d records from %s; first: %s\n"
    (Downstream.Cdc.record_count cdc) (Downstream.Cdc.source cdc)
    (match Downstream.Cdc.records cdc with
    | r :: _ ->
      Printf.sprintf "opid %s gtid %s"
        (Binlog.Opid.to_string r.Downstream.Cdc.opid)
        (Binlog.Gtid.to_string r.Downstream.Cdc.gtid)
    | [] -> "<none>");

  (* a transaction strands on the isolated primary and is truncated —
     the CDC stream must never contain it *)
  print_endline "\nisolating mysql1 with a stranded transaction; failover follows...";
  let mysql1 = Option.get (Myraft.Cluster.server cluster "mysql1") in
  Myraft.Cluster.isolate cluster "mysql1";
  Myraft.Server.submit_write mysql1 ~table:"accounts"
    ~ops:[ Binlog.Event.Insert { key = "stranded"; value = "???" } ]
    ~reply:(fun _ -> ());
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(30.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv <> "mysql1"
         | None -> false));
  Myraft.Cluster.heal cluster "mysql1";
  for i = 26 to 30 do
    ignore (write cluster (Printf.sprintf "acct%03d" i) "100")
  done;
  Myraft.Cluster.run_for cluster (3.0 *. s);
  Downstream.Cdc.stop cdc;
  Printf.printf "after failover the tailer re-attached %d time(s) to %s\n"
    (Downstream.Cdc.reattachments cdc) (Downstream.Cdc.source cdc);
  Printf.printf "stranded txn in stream: %b (must be false)\n"
    (Binlog.Gtid_set.contains
       (Downstream.Cdc.seen_gtids cdc)
       (Binlog.Gtid.make ~source:"mysql1" ~gno:26));
  (match Downstream.Cdc.validate cdc with
  | Ok n -> Printf.printf "stream valid: %d records, OpId-ordered, exactly-once\n" n
  | Error e -> Printf.printf "STREAM INVALID: %s\n" e);

  (* backup a replica, let the janitor purge the ring's history, then
     replace a member seeded from the backup *)
  print_endline "\ntaking a backup from mysql1 (now a replica)...";
  let backup = Result.get_ok (Downstream.Backup.take mysql1) in
  Printf.printf "backup: %d entries up to %s, gtid set %s\n"
    (Downstream.Backup.entry_count backup)
    (Binlog.Opid.to_string (Downstream.Backup.position backup))
    (Binlog.Gtid_set.to_string (Downstream.Backup.gtid_executed backup));
  (match
     Downstream.Backup.verify_against backup
       (Option.get (Myraft.Cluster.primary cluster))
   with
  | Ok () -> print_endline "backup verified against the live primary"
  | Error e -> Printf.printf "BACKUP DIVERGES: %s\n" e);

  print_endline "\njanitor rotates and purges the ring's history...";
  let janitor = Control.Automation.start_binlog_janitor ~keep_files:2 cluster in
  for i = 31 to 80 do
    ignore (write cluster (Printf.sprintf "acct%03d" i) "100");
    if i mod 10 = 0 then Myraft.Cluster.run_for cluster (3.0 *. s)
  done;
  Myraft.Cluster.run_for cluster (5.0 *. s);
  Control.Automation.stop_janitor janitor;
  Printf.printf "rotations=%d purged files=%d\n"
    (Control.Automation.rotations janitor)
    (Control.Automation.purges janitor);

  print_endline "\nreplacing mysql3 with a backup-seeded newcomer...";
  let backup2 = Result.get_ok (Downstream.Backup.take mysql1) in
  Myraft.Cluster.crash cluster "mysql3";
  Myraft.Cluster.run_for cluster (2.0 *. s);
  (match
     Control.Automation.replace_member ~backup:backup2 cluster ~dead:"mysql3"
       ~replacement_id:"mysql3b"
   with
  | Ok r ->
    Printf.printf "replaced %s with %s in %.0f ms\n" r.Control.Automation.removed
      r.Control.Automation.added
      (r.Control.Automation.duration_us /. ms)
  | Error e -> Printf.printf "replacement failed: %s\n" e);
  let fresh = Option.get (Myraft.Cluster.server cluster "mysql3b") in
  Printf.printf "newcomer reads acct005 = %s (restored from backup)\n"
    (Option.value ~default:"<missing>"
       (Storage.Engine.get (Myraft.Server.storage fresh) ~table:"accounts" ~key:"acct005"));
  Printf.printf "\nfinal ring:\n%s\n" (Myraft.Cluster.describe cluster)
