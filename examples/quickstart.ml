(* Quickstart: bring up a MyRaft replicaset, write through the primary,
   watch replication, and perform a graceful promotion.

     dune exec examples/quickstart.exe *)

let s = Sim.Engine.s
let ms = Sim.Engine.ms

let () =
  print_endline "== MyRaft quickstart ==";
  (* One region: a primary-capable MySQL server, two logtailers (the
     FlexiRaft data quorum), and a second MySQL server. *)
  let cluster =
    Myraft.Cluster.create ~seed:3 ~replicaset:"quickstart"
      ~members:(Myraft.Cluster.single_region_members ()) ()
  in
  Myraft.Cluster.bootstrap cluster ~leader_id:"mysql1";
  Printf.printf "\nbootstrapped; ring state:\n%s\n" (Myraft.Cluster.describe cluster);

  (* Write a few rows through the primary. *)
  let primary = Option.get (Myraft.Cluster.primary cluster) in
  let done_count = ref 0 in
  for i = 1 to 5 do
    Myraft.Server.submit_write primary ~table:"users"
      ~ops:[ Binlog.Event.Insert { key = Printf.sprintf "user%d" i; value = "alice" } ]
      ~reply:(fun outcome ->
        incr done_count;
        match outcome with
        | Myraft.Wire.Committed _ -> Printf.printf "write %d: committed\n" i
        | Myraft.Wire.Rejected reason -> Printf.printf "write %d: rejected (%s)\n" i reason)
  done;
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(5.0 *. s) (fun () -> !done_count = 5));

  (* The transactions carry both GTIDs and Raft OpIds. *)
  Printf.printf "\nprimary binlog:\n";
  List.iter
    (fun e -> Printf.printf "  %s\n" (Binlog.Entry.describe e))
    (Binlog.Log_store.all_entries (Myraft.Server.log primary));

  (* Replicas apply through the same commit pipeline. *)
  Myraft.Cluster.run_for cluster (2.0 *. s);
  let replica = Option.get (Myraft.Cluster.server cluster "mysql2") in
  Printf.printf "\nmysql2 (replica) sees user3 = %s\n"
    (Option.value ~default:"<missing>"
       (Storage.Engine.get (Myraft.Server.storage replica) ~table:"users" ~key:"user3"));

  (* Graceful promotion: mock election, quiesce, catch-up, TimeoutNow,
     promotion orchestration on mysql2. *)
  print_endline "\ntransferring leadership to mysql2...";
  (match Myraft.Cluster.transfer_leadership cluster ~target:"mysql2" with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore
    (Myraft.Cluster.run_until cluster ~timeout:(20.0 *. s) (fun () ->
         match Myraft.Cluster.primary cluster with
         | Some srv -> Myraft.Server.id srv = "mysql2"
         | None -> false));
  Printf.printf "promotion done in virtual time %.0f ms; ring state:\n%s\n"
    (Myraft.Cluster.now cluster /. ms)
    (Myraft.Cluster.describe cluster);
  print_endline "\nquickstart complete."
